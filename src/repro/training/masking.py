"""Dynamic masking with whole-word masking and elevated rates (Sec. IV-C).

The masker re-samples the mask pattern on every call (RoBERTa dynamic
masking) and masks *whole words* when a segmenter is provided (MacBERT WWM;
the LTP role is played by :class:`repro.tokenization.WholeWordSegmenter`).
The re-training stage uses a 40% rate instead of BERT's 15% (Wettig et al.).
Prompt special tokens and numeric-value positions are excluded from the
target candidates (Sec. IV-C), as are padding / ``[CLS]`` / ``[SEP]``.

The 80/10/10 corruption is applied in one vectorised pass over all selected
positions of the batch; the 10% random replacement never re-draws the
original token, so a "random" slot is guaranteed to actually corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tokenization.vocab import Vocab
from repro.tokenization.wwm import WholeWordSegmenter

IGNORE_INDEX = -100


@dataclass
class MaskedBatch:
    """Masked inputs with MLM labels."""

    ids: np.ndarray      # (B, T) corrupted input ids
    labels: np.ndarray   # (B, T) original ids at masked slots, else IGNORE
    mask_positions: np.ndarray  # (B, T) bool, True where masked

    @property
    def num_masked(self) -> int:
        return int(self.mask_positions.sum())


class DynamicMasker:
    """BERT-style 80/10/10 corruption over whole-word units."""

    def __init__(self, vocab: Vocab, rng: np.random.Generator,
                 masking_rate: float = 0.4,
                 segmenter: WholeWordSegmenter | None = None,
                 mask_token_prob: float = 0.8,
                 random_token_prob: float = 0.1):
        if not 0.0 < masking_rate < 1.0:
            raise ValueError(f"masking_rate must be in (0,1), got {masking_rate}")
        if mask_token_prob + random_token_prob > 1.0:
            raise ValueError("mask/random probabilities exceed 1")
        self.vocab = vocab
        self.rng = rng
        self.masking_rate = masking_rate
        self.segmenter = segmenter
        self.mask_token_prob = mask_token_prob
        self.random_token_prob = random_token_prob
        self._pool_cache: tuple[tuple[int, int], np.ndarray] | None = None
        self._special_cache: \
            tuple[tuple[int, int], set[int], np.ndarray] | None = None

    def _special_state(self) -> tuple[set[int], np.ndarray]:
        """Special ids as a set and sorted array, cached per vocab version.

        The vocabulary may grow (special) tokens after the masker is
        constructed (Sec. IV-A3), so the cache is keyed on the vocabulary
        and special-token counts — O(1) per call instead of rebuilding the
        set on every batch of the training hot loop.
        """
        key = (len(self.vocab), self.vocab.num_special)
        if self._special_cache is None or self._special_cache[0] != key:
            special = self.vocab.special_ids()
            array = np.fromiter(sorted(special), dtype=np.int64,
                                count=len(special))
            self._special_cache = (key, special, array)
        return self._special_cache[1], self._special_cache[2]

    @property
    def _special_ids(self) -> set[int]:
        return self._special_state()[0]

    def _replacement_pool(self, special: set[int]) -> np.ndarray:
        """Sorted non-special ids, cached until the vocabulary changes."""
        key = (len(self.vocab), len(special))
        if self._pool_cache is None or self._pool_cache[0] != key:
            pool = np.setdiff1d(np.arange(len(self.vocab), dtype=np.int64),
                                np.fromiter(special, dtype=np.int64,
                                            count=len(special)))
            self._pool_cache = (key, pool)
        return self._pool_cache[1]

    # ------------------------------------------------------------------
    def _candidate_units(self, row_ids: np.ndarray, row_mask: np.ndarray,
                         row_tokens: list[str] | None,
                         excluded: set[int]) -> list[list[int]]:
        """Maskable whole-word units for one sequence."""
        length = int(row_mask.sum())
        special = self._special_ids
        valid = {i for i in range(length)
                 if int(row_ids[i]) not in special and i not in excluded}
        if self.segmenter is not None and row_tokens is not None:
            groups = self.segmenter.segment(row_tokens[:length])
            units = []
            for group in groups:
                kept = [i for i in group if i in valid]
                if kept:
                    units.append(kept)
            return units
        return [[i] for i in sorted(valid)]

    def _select_positions(self, ids: np.ndarray, attention_mask: np.ndarray,
                          tokens: list[list[str]] | None,
                          excluded_positions: list[set[int]] | None,
                          special_array: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Sample masked (row, column) pairs for the whole batch."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        lengths = attention_mask.astype(bool).sum(axis=1)
        plain_valid = ~np.isin(ids, special_array)
        for row in range(ids.shape[0]):
            row_excluded = excluded_positions[row] if excluded_positions else set()
            row_tokens = tokens[row] if tokens is not None else None
            if self.segmenter is not None and row_tokens is not None:
                units = self._candidate_units(ids[row], attention_mask[row],
                                              row_tokens, row_excluded)
                if not units:
                    continue
                total_positions = sum(len(u) for u in units)
                target = max(1, int(round(total_positions * self.masking_rate)))
                order = self.rng.permutation(len(units))
                chosen: list[int] = []
                for unit_index in order:
                    if len(chosen) >= target:
                        break
                    chosen.extend(units[unit_index])
                chosen_arr = np.asarray(chosen, dtype=np.int64)
            else:
                candidates = np.flatnonzero(plain_valid[row, :lengths[row]])
                if row_excluded:
                    keep = ~np.isin(candidates,
                                    np.fromiter(row_excluded, dtype=np.int64,
                                                count=len(row_excluded)))
                    candidates = candidates[keep]
                if candidates.size == 0:
                    continue
                target = max(1, int(round(candidates.size * self.masking_rate)))
                chosen_arr = candidates[
                    self.rng.permutation(candidates.size)[:target]]
            rows.append(np.full(chosen_arr.size, row, dtype=np.int64))
            cols.append(chosen_arr)
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(rows), np.concatenate(cols)

    def _random_replacements(self, originals: np.ndarray,
                             pool: np.ndarray) -> np.ndarray:
        """Draw replacement ids from ``pool``, never returning the original."""
        position = np.searchsorted(pool, originals)
        in_pool = (position < pool.size) & \
            (pool[np.minimum(position, pool.size - 1)] == originals)
        available = pool.size - in_pool.astype(np.int64)
        # A pool collapsed onto the original token leaves nothing to draw;
        # keep the original there rather than sampling an invalid index.
        drawable = available > 0
        draws = self.rng.integers(0, np.maximum(available, 1))
        draws += in_pool & (draws >= position)
        replacements = pool[np.minimum(draws, pool.size - 1)]
        return np.where(drawable, replacements, originals)

    def mask_batch(self, ids: np.ndarray, attention_mask: np.ndarray,
                   tokens: list[list[str]] | None = None,
                   excluded_positions: list[set[int]] | None = None) -> MaskedBatch:
        """Corrupt a padded batch; returns inputs + labels.

        ``tokens`` enables WWM grouping (per-row token lists including
        ``[CLS]``/``[SEP]``); ``excluded_positions`` removes extra per-row
        positions (numeric values) from the candidates.
        """
        ids = np.asarray(ids)
        attention_mask = np.asarray(attention_mask)
        out_ids = ids.copy()
        labels = np.full_like(ids, IGNORE_INDEX)
        masked = np.zeros(ids.shape, dtype=bool)
        special, special_array = self._special_state()
        pool = self._replacement_pool(special)

        rows, cols = self._select_positions(ids, attention_mask, tokens,
                                            excluded_positions, special_array)
        if rows.size == 0:
            return MaskedBatch(ids=out_ids, labels=labels, mask_positions=masked)

        labels[rows, cols] = ids[rows, cols]
        masked[rows, cols] = True

        rolls = self.rng.random(rows.size)
        use_mask = rolls < self.mask_token_prob
        use_random = ~use_mask & \
            (rolls < self.mask_token_prob + self.random_token_prob)
        # else: keep original token (10% case)
        out_ids[rows[use_mask], cols[use_mask]] = self.vocab.mask_id
        if use_random.any():
            originals = ids[rows[use_random], cols[use_random]]
            out_ids[rows[use_random], cols[use_random]] = \
                self._random_replacements(originals, pool)
        return MaskedBatch(ids=out_ids, labels=labels, mask_positions=masked)
