"""Dynamic masking with whole-word masking and elevated rates (Sec. IV-C).

The masker re-samples the mask pattern on every call (RoBERTa dynamic
masking) and masks *whole words* when a segmenter is provided (MacBERT WWM;
the LTP role is played by :class:`repro.tokenization.WholeWordSegmenter`).
The re-training stage uses a 40% rate instead of BERT's 15% (Wettig et al.).
Prompt special tokens and numeric-value positions are excluded from the
target candidates (Sec. IV-C), as are padding / ``[CLS]`` / ``[SEP]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tokenization.vocab import Vocab
from repro.tokenization.wwm import WholeWordSegmenter

IGNORE_INDEX = -100


@dataclass
class MaskedBatch:
    """Masked inputs with MLM labels."""

    ids: np.ndarray      # (B, T) corrupted input ids
    labels: np.ndarray   # (B, T) original ids at masked slots, else IGNORE
    mask_positions: np.ndarray  # (B, T) bool, True where masked

    @property
    def num_masked(self) -> int:
        return int(self.mask_positions.sum())


class DynamicMasker:
    """BERT-style 80/10/10 corruption over whole-word units."""

    def __init__(self, vocab: Vocab, rng: np.random.Generator,
                 masking_rate: float = 0.4,
                 segmenter: WholeWordSegmenter | None = None,
                 mask_token_prob: float = 0.8,
                 random_token_prob: float = 0.1):
        if not 0.0 < masking_rate < 1.0:
            raise ValueError(f"masking_rate must be in (0,1), got {masking_rate}")
        if mask_token_prob + random_token_prob > 1.0:
            raise ValueError("mask/random probabilities exceed 1")
        self.vocab = vocab
        self.rng = rng
        self.masking_rate = masking_rate
        self.segmenter = segmenter
        self.mask_token_prob = mask_token_prob
        self.random_token_prob = random_token_prob

    @property
    def _special_ids(self) -> set[int]:
        # Recomputed on access: the vocabulary may grow special tokens after
        # the masker is constructed (Sec. IV-A3).
        return self.vocab.special_ids()

    # ------------------------------------------------------------------
    def _candidate_units(self, row_ids: np.ndarray, row_mask: np.ndarray,
                         row_tokens: list[str] | None,
                         excluded: set[int]) -> list[list[int]]:
        """Maskable whole-word units for one sequence."""
        length = int(row_mask.sum())
        valid = [i for i in range(length)
                 if int(row_ids[i]) not in self._special_ids
                 and i not in excluded]
        if self.segmenter is not None and row_tokens is not None:
            groups = self.segmenter.segment(row_tokens[:length])
            units = []
            for group in groups:
                kept = [i for i in group if i in valid]
                if kept:
                    units.append(kept)
            return units
        return [[i] for i in valid]

    def mask_batch(self, ids: np.ndarray, attention_mask: np.ndarray,
                   tokens: list[list[str]] | None = None,
                   excluded_positions: list[set[int]] | None = None) -> MaskedBatch:
        """Corrupt a padded batch; returns inputs + labels.

        ``tokens`` enables WWM grouping (per-row token lists including
        ``[CLS]``/``[SEP]``); ``excluded_positions`` removes extra per-row
        positions (numeric values) from the candidates.
        """
        ids = np.asarray(ids)
        attention_mask = np.asarray(attention_mask)
        out_ids = ids.copy()
        labels = np.full_like(ids, IGNORE_INDEX)
        masked = np.zeros(ids.shape, dtype=bool)
        special = self._special_ids
        replacement_pool = np.array(
            [i for i in range(len(self.vocab)) if i not in special],
            dtype=np.int64)

        for row in range(ids.shape[0]):
            row_excluded = excluded_positions[row] if excluded_positions else set()
            row_tokens = tokens[row] if tokens is not None else None
            units = self._candidate_units(ids[row], attention_mask[row],
                                          row_tokens, row_excluded)
            if not units:
                continue
            total_positions = sum(len(u) for u in units)
            target = max(1, int(round(total_positions * self.masking_rate)))
            order = self.rng.permutation(len(units))
            chosen: list[int] = []
            for unit_index in order:
                if len(chosen) >= target:
                    break
                chosen.extend(units[unit_index])
            for position in chosen:
                labels[row, position] = ids[row, position]
                masked[row, position] = True
                roll = self.rng.random()
                if roll < self.mask_token_prob:
                    out_ids[row, position] = self.vocab.mask_id
                elif roll < self.mask_token_prob + self.random_token_prob:
                    out_ids[row, position] = int(replacement_pool[
                        self.rng.integers(len(replacement_pool))])
                # else: keep original token (10% case)
        return MaskedBatch(ids=out_ids, labels=labels, mask_positions=masked)
