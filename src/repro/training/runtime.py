"""Fault-tolerant, data-parallel stage-2 training runtime.

Production pre-training runs die — preempted nodes, OOM kills, operator
Ctrl-C — and single-core loops waste the hardware.  This module wraps
:class:`~repro.training.retrainer.KTeleBertRetrainer` with the three
capabilities the paper's longest loop needs to survive outside a notebook:

* **Checkpoint/resume** — on a configurable step/time cadence the runtime
  writes a full :class:`~repro.models.checkpoint.TrainState` snapshot
  (model weights, optimizer moments, RNG stream, batch cursors, step and
  loss history) atomically via temp-file + fsync + rename.  A retention
  policy keeps the last K snapshots plus the best-loss one.  Restoring the
  latest snapshot continues the run *bit-exactly*: the resumed loss
  trajectory is identical to the uninterrupted one.

* **Multi-process data parallelism** — each step's batch is sharded across
  N persistent forked workers holding model replicas.  Parameters,
  per-worker gradients, and the step's batch indices live in
  ``multiprocessing.shared_memory`` blocks (:mod:`repro.training.shm`);
  pipes carry only control tuples (step index, shard bounds) and scalar
  losses, never arrays.  Workers run forward/backward on their shard with
  a deterministic per-``(seed, worker, step)`` RNG; the parent reduces
  gradient blocks as a shard-size-weighted mean in fixed worker order —
  folding each block as soon as its worker reports, overlapping reduction
  with the stragglers' compute — before the usual clip + Adam update.  A
  straggler timeout bounds the wait for any worker; on timeout or worker
  failure the runtime degrades to the serial path and keeps training,
  retrying the pool after ``pool_retry_steps`` serial steps until
  ``pool_max_failures`` consecutive failures disable it for the run.

* **Run journal** — every step appends a structured JSONL event (step,
  loss breakdown, tokens/sec, wall time) to ``journal.jsonl``; lifecycle
  events (start, checkpoint, interrupt, resume, complete) make an
  interrupted run detectable on restart.  The journal replays into a
  :class:`~repro.serving.metrics.MetricsRegistry` via
  :func:`repro.serving.metrics.replay_journal`.

SIGINT/SIGTERM are trapped into a final checkpoint plus an ``interrupted``
journal event, so a preempted run loses at most the in-flight step.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path

import numpy as np

from repro.models.checkpoint import (
    TrainState,
    atomic_write_bytes,
    load_train_state,
    save_train_state,
)
from repro.tensor.tensor import Tensor
from repro.training.masking import DynamicMasker
from repro.training.retrainer import (
    KTeleBertRetrainer,
    RetrainingLog,
    StepLosses,
    compute_stage2_losses,
)
from repro.training.shm import PoolSharedState

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_DIR = "snapshots"

#: Journal event kinds that mark a run as cleanly finished.
_TERMINAL_KINDS = frozenset({"run_complete"})


class WorkerPoolError(RuntimeError):
    """A gradient worker failed, died, or exceeded the straggler timeout."""


# ----------------------------------------------------------------------
# Run journal
# ----------------------------------------------------------------------
class RunJournal:
    """Append-only JSONL event log describing one training run.

    Each line is a self-contained JSON object with at least ``kind`` and
    ``time``.  Appends are flushed and fsynced so the journal reflects
    every completed step even after a hard crash; a torn final line (the
    crash window) is tolerated by :meth:`events`.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, kind: str, **fields) -> dict:
        """Write one event; returns the event dict."""
        event = {"kind": kind, "time": time.time(), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, ensure_ascii=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return event

    def events(self) -> list[dict]:
        """All well-formed events, oldest first (torn tail lines skipped)."""
        if not self.path.exists():
            return []
        events = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write at crash time
        return events

    def last_event(self) -> dict | None:
        events = self.events()
        return events[-1] if events else None

    def is_interrupted(self) -> bool:
        """True when the journal records a run that never completed."""
        last = self.last_event()
        return last is not None and last.get("kind") not in _TERMINAL_KINDS


# ----------------------------------------------------------------------
# Snapshot store with retention
# ----------------------------------------------------------------------
class SnapshotStore:
    """Directory of atomic ``step-XXXXXXXX.npz`` training snapshots.

    Retention keeps the newest ``keep_last`` snapshots plus the one with
    the best (lowest) recorded loss.  An ``index.json`` (also written
    atomically) maps snapshot files to their step and loss so retention
    and resume never need to open the ``.npz`` payloads.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = keep_last

    def path_for(self, step: int) -> Path:
        return self.directory / f"step-{step:08d}.npz"

    # -- index ---------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.directory / "index.json"

    def index(self) -> dict[str, dict]:
        """filename → {"step": int, "loss": float} for retained snapshots."""
        if not self._index_path.exists():
            # Fall back to a directory scan (pre-index stores, manual edits).
            entries = {}
            for path in sorted(self.directory.glob("step-*.npz")):
                try:
                    step = int(path.stem.split("-")[1])
                except (IndexError, ValueError):
                    continue
                entries[path.name] = {"step": step, "loss": float("inf")}
            return entries
        return json.loads(self._index_path.read_text())["snapshots"]

    def _write_index(self, entries: dict[str, dict]) -> None:
        payload = json.dumps({"snapshots": entries}, sort_keys=True)
        atomic_write_bytes(self._index_path, payload.encode())

    # -- save / prune / load -------------------------------------------
    def save(self, model, optimizer, trainer_state: dict, *, step: int,
             loss: float, extra: dict | None = None) -> Path:
        """Write one snapshot, update the index, and apply retention."""
        path = self.path_for(step)
        save_train_state(path, model, optimizer, trainer_state,
                         step=step, loss=loss, extra=extra)
        entries = self.index()
        entries[path.name] = {"step": int(step), "loss": float(loss)}
        entries = self._prune(entries)
        self._write_index(entries)
        return path

    def _prune(self, entries: dict[str, dict]) -> dict[str, dict]:
        if len(entries) <= self.keep_last:
            return entries
        by_step = sorted(entries.items(), key=lambda kv: kv[1]["step"])
        keep = {name for name, _ in by_step[-self.keep_last:]}
        best = min(entries.items(), key=lambda kv: kv[1]["loss"])[0]
        keep.add(best)
        for name in list(entries):
            if name not in keep:
                (self.directory / name).unlink(missing_ok=True)
                del entries[name]
        return entries

    def latest(self) -> Path | None:
        """Path of the newest retained snapshot, or None."""
        entries = self.index()
        if not entries:
            return None
        name = max(entries.items(), key=lambda kv: kv[1]["step"])[0]
        return self.directory / name

    def best(self) -> Path | None:
        """Path of the lowest-loss retained snapshot, or None."""
        entries = self.index()
        if not entries:
            return None
        name = min(entries.items(), key=lambda kv: kv[1]["loss"])[0]
        return self.directory / name

    def load_latest(self) -> TrainState | None:
        path = self.latest()
        return load_train_state(path) if path is not None else None


# ----------------------------------------------------------------------
# Gradient worker pool (multi-process data parallelism over shared memory)
# ----------------------------------------------------------------------
def _flatten(arrays: list[np.ndarray]) -> np.ndarray:
    return np.concatenate([np.asarray(a).ravel() for a in arrays])


def _write_flat(flat: np.ndarray, targets: list) -> None:
    offset = 0
    for param in targets:
        size = param.data.size
        param.data[...] = flat[offset:offset + size].reshape(param.data.shape)
        offset += size


def _fill_flat(flat: np.ndarray, sources: list) -> None:
    """Write parameter values into a preallocated flat vector in-place."""
    offset = 0
    for param in sources:
        size = param.data.size
        flat[offset:offset + size] = param.data.ravel()
        offset += size


def _fill_flat_grads(flat: np.ndarray, params: list) -> None:
    """Write parameter gradients (zeros where absent) into ``flat``."""
    offset = 0
    for param in params:
        size = param.data.size
        if param.grad is None:
            flat[offset:offset + size] = 0.0
        else:
            flat[offset:offset + size] = param.grad.ravel()
        offset += size


def _split_flat(flat: np.ndarray, like: list) -> list[np.ndarray]:
    out = []
    offset = 0
    for param in like:
        size = param.data.size
        out.append(flat[offset:offset + size].reshape(param.data.shape))
        offset += size
    return out


def _worker_main(conn, model, mask_rows: list, triple_rows: list,
                 shared: PoolSharedState, base_seed: int,
                 worker_id: int) -> None:
    """Worker loop: shared-memory params in, shared-memory gradients out.

    Runs in a forked child, so ``model``, the datasets, and the shared
    blocks are all inherited without pickling.  Each control message names
    a step and half-open bounds into the shared index block; the worker
    refreshes its replica from the shared parameter block, materialises
    its shard rows from the inherited datasets, runs forward/backward, and
    writes its flattened gradient into its own shared block — the ``ok``
    reply carries only scalar losses.  The masking RNG is reseeded per
    ``(base_seed, worker_id, step)`` so runs are reproducible and resumable
    regardless of which steps each worker served before.
    """
    params = model.parameters()
    model.train()
    masker = DynamicMasker(model.tokenizer.vocab, np.random.default_rng(0),
                           masking_rate=model.config.masking_rate)
    param_block = shared.params.array
    grad_block = shared.grads[worker_id].array
    index_block = shared.indices.array
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if message[0] == "stop":
                break
            _, step, row_lo, row_hi, triple_lo, triple_hi = message
            try:
                _write_flat(param_block, params)
                rows = [mask_rows[i] for i in index_block[row_lo:row_hi]]
                triples = [triple_rows[i]
                           for i in index_block[triple_lo:triple_hi]]
                for param in params:
                    param.zero_grad()
                # Step-keyed streams make each worker's computation
                # independent of which steps it served before — required
                # for bit-exact resume of parallel runs.  Masking and
                # dropout get distinct SeedSequence branches so their
                # draws are uncorrelated.
                masker.rng = np.random.default_rng(
                    [base_seed, worker_id, step])
                model.rng.bit_generator.state = np.random.default_rng(
                    [base_seed, worker_id, step, 1]).bit_generator.state
                losses = compute_stage2_losses(model, masker,
                                               rows or None, triples or None)
                losses.total.backward()
                _fill_flat_grads(grad_block, params)
                conn.send(("ok", step,
                           {"total": losses.value, "mask": losses.mask,
                            "ke": losses.ke,
                            "numeric_regression":
                                losses.numeric_regression},
                           losses.tokens))
            except Exception:  # surfaced to the parent as WorkerPoolError
                conn.send(("err", step, traceback.format_exc()))
    finally:
        shared.release()


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    conn: object
    worker_id: int


class GradientWorkerPool:
    """N persistent forked replicas sharing parameters and gradients.

    The parent writes the flattened parameter vector into one shared-memory
    block once per step and the step's batch indices into a small shared
    index block; each worker computes forward/backward over its shard and
    writes its flattened gradient into its own shared block.  Pipes carry
    only tiny control tuples — step index and shard bounds out, scalar
    losses back — never arrays, so per-step cost is the compute itself
    rather than pickling a model-sized payload per worker.

    The parent reduces worker gradients as a shard-size-weighted mean —
    equivalent in expectation to the serial gradient of the full batch.
    Reduction overlaps compute: worker *i*'s block is folded into the sum
    as soon as it reports in (in fixed worker order, so the float sum is
    deterministic) while later workers are still computing.  ``fork``
    start method only (replicas inherit the model and datasets without
    pickling); callers fall back to the serial path when fork is
    unavailable or startup fails.
    """

    def __init__(self, model, num_workers: int, base_seed: int,
                 straggler_timeout_s: float = 120.0, *,
                 mask_rows: list | None = None,
                 triple_rows: list | None = None,
                 index_capacity: int = 64):
        if num_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        self._workers: list[_WorkerHandle] = []
        self._shared: PoolSharedState | None = None
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerPoolError("fork start method unavailable")
        self._params = model.parameters()
        self.num_workers = num_workers
        self.straggler_timeout_s = straggler_timeout_s
        mask_rows = list(mask_rows) if mask_rows else []
        triple_rows = list(triple_rows) if triple_rows else []
        param_size = sum(p.data.size for p in self._params)
        context = multiprocessing.get_context("fork")
        try:
            self._shared = PoolSharedState(param_size, num_workers,
                                           index_capacity)
            # Preallocated reduction buffers: the hot path never allocates
            # (or pickles) a parameter-sized array.
            self._reduced = np.zeros(param_size)
            self._scratch = np.zeros(param_size)
            for worker_id in range(num_workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, model, mask_rows, triple_rows,
                          self._shared, base_seed, worker_id),
                    daemon=True)
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(process, parent_conn,
                                                   worker_id))
        except Exception as error:
            self.close()
            raise WorkerPoolError(f"worker startup failed: {error}") from error

    @property
    def segment_names(self) -> list[str]:
        """Live shared-memory segment names (for leak checks)."""
        return self._shared.segment_names if self._shared is not None else []

    @staticmethod
    def _shard_bounds(count: int, workers: int) -> np.ndarray:
        return np.linspace(0, count, workers + 1).astype(int)

    def step(self, step_index: int, row_indices, triple_indices
             ) -> tuple[list[np.ndarray], StepLosses]:
        """One data-parallel forward/backward; returns (grads, losses).

        ``row_indices`` / ``triple_indices`` are the dataset indices of the
        step's drawn batches (``None`` for an inactive task).  The returned
        gradient arrays are views into the pool's reduction buffer and stay
        valid until the next :meth:`step` call.  Raises
        :class:`WorkerPoolError` on worker failure or straggler timeout;
        the caller is expected to fall back to the serial path.
        """
        if self._shared is None:
            raise WorkerPoolError("pool is closed")
        rows = np.asarray(row_indices if row_indices is not None else [],
                          dtype=np.int64)
        triples = np.asarray(
            triple_indices if triple_indices is not None else [],
            dtype=np.int64)
        n_rows, n_triples = len(rows), len(triples)
        if n_rows + n_triples > self._shared.index_capacity:
            raise WorkerPoolError(
                f"{n_rows + n_triples} batch indices exceed the shared "
                f"index capacity {self._shared.index_capacity}")
        # Publish this step's parameters and batch indices; workers read
        # both straight out of shared memory.
        _fill_flat(self._shared.params.array, self._params)
        index_block = self._shared.indices.array
        index_block[:n_rows] = rows
        index_block[n_rows:n_rows + n_triples] = triples

        row_bounds = self._shard_bounds(n_rows, self.num_workers)
        triple_bounds = self._shard_bounds(n_triples, self.num_workers)
        active: list[tuple[_WorkerHandle, int]] = []
        for i, handle in enumerate(self._workers):
            row_lo, row_hi = int(row_bounds[i]), int(row_bounds[i + 1])
            triple_lo = n_rows + int(triple_bounds[i])
            triple_hi = n_rows + int(triple_bounds[i + 1])
            weight = (row_hi - row_lo) + (triple_hi - triple_lo)
            if weight == 0:
                continue
            try:
                handle.conn.send(("step", step_index, row_lo, row_hi,
                                  triple_lo, triple_hi))
            except (OSError, ValueError) as error:
                raise WorkerPoolError(
                    f"worker {handle.worker_id} unreachable: "
                    f"{error}") from error
            active.append((handle, weight))
        if not active:
            raise WorkerPoolError("no worker received a non-empty shard")

        total_weight = float(sum(w for _, w in active))
        deadline = time.monotonic() + self.straggler_timeout_s
        losses = {"total": 0.0, "mask": 0.0, "ke": 0.0,
                  "numeric_regression": 0.0}
        tokens = 0
        reduced = self._reduced
        reduced[:] = 0.0
        pending = {handle.conn: (handle, weight)
                   for handle, weight in active}
        replies: dict[int, tuple] = {}
        folded = 0
        # Fold gradients in fixed worker order (deterministic float sum)
        # but start folding as soon as the next-in-order worker reports —
        # worker i's block is reduced while worker j still computes.
        while folded < len(active):
            while (folded < len(active)
                   and active[folded][0].worker_id in replies):
                handle, weight = active[folded]
                share = weight / total_weight
                np.multiply(self._shared.grads[handle.worker_id].array,
                            share, out=self._scratch)
                reduced += self._scratch
                parts, shard_tokens = replies.pop(handle.worker_id)
                for key in losses:
                    losses[key] += parts[key] * share
                tokens += shard_tokens
                folded += 1
            if folded >= len(active):
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerPoolError(
                    f"straggler: worker {active[folded][0].worker_id} "
                    f"exceeded {self.straggler_timeout_s:.1f}s")
            ready = connection.wait(list(pending), timeout=remaining)
            if not ready:
                raise WorkerPoolError(
                    f"straggler: worker {active[folded][0].worker_id} "
                    f"exceeded {self.straggler_timeout_s:.1f}s")
            for conn in ready:
                handle, _weight = pending.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as error:
                    raise WorkerPoolError(
                        f"worker {handle.worker_id} died mid-step: "
                        f"{error!r}") from error
                if reply[0] != "ok":
                    raise WorkerPoolError(
                        f"worker {handle.worker_id} failed at step "
                        f"{step_index}:\n{reply[2]}")
                _, reply_step, parts, shard_tokens = reply
                if reply_step != step_index:
                    raise WorkerPoolError(
                        f"worker {handle.worker_id} answered step "
                        f"{reply_step}, expected {step_index}")
                replies[handle.worker_id] = (parts, shard_tokens)
        step_losses = StepLosses(total=Tensor(losses["total"]),
                                 mask=losses["mask"], ke=losses["ke"],
                                 numeric_regression=losses[
                                     "numeric_regression"],
                                 tokens=tokens)
        return _split_flat(reduced, self._params), step_losses

    def close(self) -> None:
        """Stop and join every worker, then unlink the shared segments.

        Idempotent, and safe after worker crashes: the parent owns the
        segments, so they are removed even when children died hard.
        """
        for handle in self._workers:
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
        self._workers = []
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The runtime
# ----------------------------------------------------------------------
@dataclass
class RuntimeConfig:
    """Knobs of the fault-tolerant runtime."""

    run_dir: str | Path
    workers: int = 1
    checkpoint_every_steps: int = 50
    checkpoint_every_s: float | None = None
    keep_last: int = 3
    straggler_timeout_s: float = 120.0
    #: After a pool failure, train serially for this many steps then try to
    #: rebuild the pool; ``0`` disables retries (first failure is final).
    pool_retry_steps: int = 50
    #: Consecutive pool failures after which parallelism is disabled for
    #: the rest of the run.
    pool_max_failures: int = 3
    handle_signals: bool = True
    extra: dict = field(default_factory=dict)  # recorded in every snapshot


class TrainingRuntime:
    """Runs a retrainer with checkpoint/resume, workers, and a journal."""

    def __init__(self, retrainer: KTeleBertRetrainer, config: RuntimeConfig):
        self.retrainer = retrainer
        self.config = config
        self.run_dir = Path(config.run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.journal = RunJournal(self.run_dir / JOURNAL_NAME)
        self.snapshots = SnapshotStore(self.run_dir / SNAPSHOT_DIR,
                                       keep_last=config.keep_last)
        self._pool: GradientWorkerPool | None = None
        self._parallel_disabled = False
        self._pool_failures = 0       # consecutive failures so far
        self._retry_countdown = 0     # serial steps left before a rebuild
        self._stop_signal: int | None = None
        self._last_checkpoint_time = time.monotonic()
        self._last_checkpoint_step: int | None = None
        self.interrupted = False

    # -- resume --------------------------------------------------------
    def resume_if_available(self) -> int | None:
        """Restore the latest snapshot if one exists; returns its step."""
        state = self.snapshots.load_latest()
        if state is None:
            return None
        state.apply(self.retrainer.model, self.retrainer.optimizer)
        self.retrainer.load_state_dict(state.trainer_state)
        self.journal.append("resume", step=state.step, loss=state.loss)
        return state.step

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, reason: str = "cadence") -> Path:
        """Write a snapshot of the current training state."""
        retrainer = self.retrainer
        step = retrainer.step_index
        loss = retrainer.log.total[-1] if retrainer.log.total else float("inf")
        tasks = (sorted(retrainer.strategy.tasks_at(step))
                 if step < retrainer.strategy.total_steps else [])
        path = self.snapshots.save(
            retrainer.model, retrainer.optimizer, retrainer.state_dict(),
            step=step, loss=loss,
            extra={"reason": reason, "mtl_phase": tasks,
                   "workers": self.config.workers, **self.config.extra})
        self._last_checkpoint_time = time.monotonic()
        self._last_checkpoint_step = step
        self.journal.append("checkpoint", step=step, loss=loss,
                            path=path.name, reason=reason)
        return path

    def _checkpoint_due(self) -> bool:
        step = self.retrainer.step_index
        every = self.config.checkpoint_every_steps
        if every and step % every == 0:
            return True
        cadence_s = self.config.checkpoint_every_s
        return bool(
            cadence_s
            and time.monotonic() - self._last_checkpoint_time >= cadence_s)

    # -- signals -------------------------------------------------------
    def _install_signals(self) -> dict:
        if not self.config.handle_signals:
            return {}
        previous = {}

        def _request_stop(signum, frame):
            self._stop_signal = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _request_stop)
            except ValueError:  # not in the main thread
                break
        return previous

    @staticmethod
    def _restore_signals(previous: dict) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- stepping ------------------------------------------------------
    def _ensure_pool(self) -> GradientWorkerPool | None:
        if self.config.workers < 2 or self._parallel_disabled:
            return None
        if self._pool is not None:
            return self._pool
        if self._retry_countdown > 0:
            # Cooling down after a failure: train serially, count down to
            # the rebuild attempt.
            self._retry_countdown -= 1
            return None
        retrainer = self.retrainer
        rebuilding = self._pool_failures > 0
        index_capacity = retrainer.mask_batches.batch_size + (
            retrainer.ke_batches.batch_size
            if retrainer.ke_batches is not None else 0)
        try:
            self._pool = GradientWorkerPool(
                retrainer.model, self.config.workers,
                base_seed=retrainer.seed,
                straggler_timeout_s=self.config.straggler_timeout_s,
                mask_rows=retrainer.data.mask_rows,
                triple_rows=retrainer.data.triple_rows,
                index_capacity=index_capacity)
        except WorkerPoolError as error:
            self._degrade(f"pool startup failed: {error}")
            return None
        if rebuilding:
            self.journal.append("pool_rebuilt", step=retrainer.step_index,
                                after_failures=self._pool_failures)
        return self._pool

    def _degrade(self, reason: str) -> None:
        """Fall back to serial after a pool failure.

        Failures are counted consecutively (a successful parallel step
        resets the count).  Until ``pool_max_failures`` is reached the
        fallback is temporary: after ``pool_retry_steps`` serial steps the
        pool is rebuilt.  ``pool_retry_steps=0`` keeps the pre-retry
        behaviour of disabling parallelism on the first failure.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._pool_failures += 1
        retry_steps = self.config.pool_retry_steps
        permanent = (retry_steps <= 0
                     or self._pool_failures >= self.config.pool_max_failures)
        if permanent:
            self._parallel_disabled = True
        else:
            self._retry_countdown = retry_steps
        self.journal.append("fallback_serial", reason=reason,
                            step=self.retrainer.step_index,
                            failures=self._pool_failures,
                            permanent=permanent,
                            retry_in_steps=None if permanent else retry_steps)

    def train_step(self) -> StepLosses:
        """One runtime step: parallel when possible, serial otherwise."""
        retrainer = self.retrainer
        pool = self._ensure_pool()
        if pool is None:
            tasks = retrainer.advance()
            rows, triples = retrainer.draw_batches(tasks)
            retrainer.optimizer.zero_grad()
            losses = retrainer.compute_losses(rows, triples)
            losses.total.backward()
            retrainer.finish_step(losses)
            return losses

        tasks = retrainer.advance()
        rows, row_indices, triples, triple_indices = (
            retrainer.draw_batches_with_indices(tasks))
        step_index = retrainer.step_index - 1
        try:
            grads, losses = pool.step(step_index, row_indices,
                                      triple_indices)
        except WorkerPoolError as error:
            self._degrade(str(error))
            retrainer.optimizer.zero_grad()
            losses = retrainer.compute_losses(rows, triples)
            losses.total.backward()
            retrainer.finish_step(losses)
            return losses
        self._pool_failures = 0
        retrainer.optimizer.zero_grad()
        for param, grad in zip(retrainer.optimizer.parameters, grads):
            # Views into the pool's reduction buffer: consumed synchronously
            # by clip + Adam below, and only rewritten by the next
            # pool.step, so the hot path skips a parameter-sized copy.
            param.grad = grad
        retrainer.finish_step(losses)
        return losses

    # -- the loop ------------------------------------------------------
    def run(self, max_steps: int | None = None) -> RetrainingLog:
        """Train until the schedule ends, ``max_steps`` pass, or a signal.

        Returns the loss log; ``self.interrupted`` tells apart a clean
        completion from a signal-triggered stop (which leaves behind a
        final checkpoint and an ``interrupted`` journal event).  Exiting
        via ``max_steps`` also checkpoints (reason ``"max_steps"``, deduped
        against a cadence checkpoint at the same step) and journals
        ``run_paused``, so a bounded run is always resumable from its last
        completed step.
        """
        retrainer = self.retrainer
        retrainer.model.train()
        total_steps = retrainer.strategy.total_steps
        resumed_from = retrainer.step_index if retrainer.step_index else None
        self.journal.append("run_start", step=retrainer.step_index,
                            total_steps=total_steps,
                            workers=self.config.workers,
                            resumed_from=resumed_from)
        previous_handlers = self._install_signals()
        self.interrupted = False
        steps_done = 0
        self._last_checkpoint_time = time.monotonic()
        try:
            while retrainer.step_index < total_steps:
                if max_steps is not None and steps_done >= max_steps:
                    # A bounded run is a pause, not a completion: snapshot
                    # here (unless the cadence checkpoint just did) so
                    # resuming continues from exactly this step instead of
                    # silently losing the steps since the last cadence hit.
                    if self._last_checkpoint_step != retrainer.step_index:
                        self.checkpoint(reason="max_steps")
                    self.journal.append("run_paused",
                                        step=retrainer.step_index,
                                        steps_done=steps_done)
                    break
                if self._stop_signal is not None:
                    self.interrupted = True
                    self.checkpoint(reason=f"signal {self._stop_signal}")
                    self.journal.append("interrupted",
                                        step=retrainer.step_index,
                                        signal=self._stop_signal)
                    break
                start = time.perf_counter()
                losses = self.train_step()
                wall = time.perf_counter() - start
                steps_done += 1
                self.journal.append(
                    "step", step=retrainer.step_index, loss=losses.value,
                    mask=losses.mask, ke=losses.ke,
                    numeric_regression=losses.numeric_regression,
                    tokens=losses.tokens,
                    tokens_per_sec=losses.tokens / wall if wall > 0 else 0.0,
                    wall_s=wall)
                if self._checkpoint_due():
                    self.checkpoint()
            else:
                self.checkpoint(reason="final")
                self.journal.append("run_complete",
                                    step=retrainer.step_index)
        finally:
            self._restore_signals(previous_handlers)
            if self._pool is not None:
                self._pool.close()
                self._pool = None
        return retrainer.log
