"""Fault-tolerant, data-parallel stage-2 training runtime.

Production pre-training runs die — preempted nodes, OOM kills, operator
Ctrl-C — and single-core loops waste the hardware.  This module wraps
:class:`~repro.training.retrainer.KTeleBertRetrainer` with the three
capabilities the paper's longest loop needs to survive outside a notebook:

* **Checkpoint/resume** — on a configurable step/time cadence the runtime
  writes a full :class:`~repro.models.checkpoint.TrainState` snapshot
  (model weights, optimizer moments, RNG stream, batch cursors, step and
  loss history) atomically via temp-file + fsync + rename.  A retention
  policy keeps the last K snapshots plus the best-loss one.  Restoring the
  latest snapshot continues the run *bit-exactly*: the resumed loss
  trajectory is identical to the uninterrupted one.

* **Multi-process data parallelism** — each step's batch is sharded across
  N forked workers holding model replicas; workers run forward/backward on
  their shard with a deterministic per-``(seed, worker, step)`` RNG and
  return gradients that the parent averages (allreduce-by-mean, weighted
  by shard size) before the usual clip + Adam update.  A straggler timeout
  bounds the wait for any worker; on timeout or worker failure the runtime
  degrades to the serial path and keeps training.

* **Run journal** — every step appends a structured JSONL event (step,
  loss breakdown, tokens/sec, wall time) to ``journal.jsonl``; lifecycle
  events (start, checkpoint, interrupt, resume, complete) make an
  interrupted run detectable on restart.  The journal replays into a
  :class:`~repro.serving.metrics.MetricsRegistry` via
  :func:`repro.serving.metrics.replay_journal`.

SIGINT/SIGTERM are trapped into a final checkpoint plus an ``interrupted``
journal event, so a preempted run loses at most the in-flight step.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.models.checkpoint import (
    TrainState,
    atomic_write_bytes,
    load_train_state,
    save_train_state,
)
from repro.tensor.tensor import Tensor
from repro.training.masking import DynamicMasker
from repro.training.retrainer import (
    KTeleBertRetrainer,
    RetrainingLog,
    StepLosses,
    compute_stage2_losses,
)

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_DIR = "snapshots"

#: Journal event kinds that mark a run as cleanly finished.
_TERMINAL_KINDS = frozenset({"run_complete"})


class WorkerPoolError(RuntimeError):
    """A gradient worker failed, died, or exceeded the straggler timeout."""


# ----------------------------------------------------------------------
# Run journal
# ----------------------------------------------------------------------
class RunJournal:
    """Append-only JSONL event log describing one training run.

    Each line is a self-contained JSON object with at least ``kind`` and
    ``time``.  Appends are flushed and fsynced so the journal reflects
    every completed step even after a hard crash; a torn final line (the
    crash window) is tolerated by :meth:`events`.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, kind: str, **fields) -> dict:
        """Write one event; returns the event dict."""
        event = {"kind": kind, "time": time.time(), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, ensure_ascii=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return event

    def events(self) -> list[dict]:
        """All well-formed events, oldest first (torn tail lines skipped)."""
        if not self.path.exists():
            return []
        events = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write at crash time
        return events

    def last_event(self) -> dict | None:
        events = self.events()
        return events[-1] if events else None

    def is_interrupted(self) -> bool:
        """True when the journal records a run that never completed."""
        last = self.last_event()
        return last is not None and last.get("kind") not in _TERMINAL_KINDS


# ----------------------------------------------------------------------
# Snapshot store with retention
# ----------------------------------------------------------------------
class SnapshotStore:
    """Directory of atomic ``step-XXXXXXXX.npz`` training snapshots.

    Retention keeps the newest ``keep_last`` snapshots plus the one with
    the best (lowest) recorded loss.  An ``index.json`` (also written
    atomically) maps snapshot files to their step and loss so retention
    and resume never need to open the ``.npz`` payloads.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = keep_last

    def path_for(self, step: int) -> Path:
        return self.directory / f"step-{step:08d}.npz"

    # -- index ---------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.directory / "index.json"

    def index(self) -> dict[str, dict]:
        """filename → {"step": int, "loss": float} for retained snapshots."""
        if not self._index_path.exists():
            # Fall back to a directory scan (pre-index stores, manual edits).
            entries = {}
            for path in sorted(self.directory.glob("step-*.npz")):
                try:
                    step = int(path.stem.split("-")[1])
                except (IndexError, ValueError):
                    continue
                entries[path.name] = {"step": step, "loss": float("inf")}
            return entries
        return json.loads(self._index_path.read_text())["snapshots"]

    def _write_index(self, entries: dict[str, dict]) -> None:
        payload = json.dumps({"snapshots": entries}, sort_keys=True)
        atomic_write_bytes(self._index_path, payload.encode())

    # -- save / prune / load -------------------------------------------
    def save(self, model, optimizer, trainer_state: dict, *, step: int,
             loss: float, extra: dict | None = None) -> Path:
        """Write one snapshot, update the index, and apply retention."""
        path = self.path_for(step)
        save_train_state(path, model, optimizer, trainer_state,
                         step=step, loss=loss, extra=extra)
        entries = self.index()
        entries[path.name] = {"step": int(step), "loss": float(loss)}
        entries = self._prune(entries)
        self._write_index(entries)
        return path

    def _prune(self, entries: dict[str, dict]) -> dict[str, dict]:
        if len(entries) <= self.keep_last:
            return entries
        by_step = sorted(entries.items(), key=lambda kv: kv[1]["step"])
        keep = {name for name, _ in by_step[-self.keep_last:]}
        best = min(entries.items(), key=lambda kv: kv[1]["loss"])[0]
        keep.add(best)
        for name in list(entries):
            if name not in keep:
                (self.directory / name).unlink(missing_ok=True)
                del entries[name]
        return entries

    def latest(self) -> Path | None:
        """Path of the newest retained snapshot, or None."""
        entries = self.index()
        if not entries:
            return None
        name = max(entries.items(), key=lambda kv: kv[1]["step"])[0]
        return self.directory / name

    def best(self) -> Path | None:
        """Path of the lowest-loss retained snapshot, or None."""
        entries = self.index()
        if not entries:
            return None
        name = min(entries.items(), key=lambda kv: kv[1]["loss"])[0]
        return self.directory / name

    def load_latest(self) -> TrainState | None:
        path = self.latest()
        return load_train_state(path) if path is not None else None


# ----------------------------------------------------------------------
# Gradient worker pool (multi-process data parallelism)
# ----------------------------------------------------------------------
def _flatten(arrays: list[np.ndarray]) -> np.ndarray:
    return np.concatenate([np.asarray(a).ravel() for a in arrays])


def _write_flat(flat: np.ndarray, targets: list) -> None:
    offset = 0
    for param in targets:
        size = param.data.size
        param.data[...] = flat[offset:offset + size].reshape(param.data.shape)
        offset += size


def _split_flat(flat: np.ndarray, like: list) -> list[np.ndarray]:
    out = []
    offset = 0
    for param in like:
        size = param.data.size
        out.append(flat[offset:offset + size].reshape(param.data.shape))
        offset += size
    return out


def _worker_main(conn, model, masking_rate: float, base_seed: int,
                 worker_id: int) -> None:
    """Worker loop: receive (params, shard), return averaged-ready grads.

    Runs in a forked child, so ``model`` is this worker's private replica
    of the parent model at pool-creation time; every step message carries
    the current parameter vector, keeping replicas in sync with the
    parent's optimizer.  The masking RNG is reseeded per
    ``(base_seed, worker_id, step)`` so runs are reproducible and resumable
    regardless of which steps each worker served before.
    """
    params = model.parameters()
    model.train()
    masker = DynamicMasker(model.tokenizer.vocab, np.random.default_rng(0),
                           masking_rate=masking_rate)
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _, step, flat_params, rows, triples = message
        try:
            _write_flat(flat_params, params)
            for param in params:
                param.zero_grad()
            # Step-keyed streams make each worker's computation independent
            # of which steps it served before — required for bit-exact
            # resume of parallel runs.  Masking and dropout get distinct
            # SeedSequence branches so their draws are uncorrelated.
            masker.rng = np.random.default_rng([base_seed, worker_id, step])
            model.rng.bit_generator.state = np.random.default_rng(
                [base_seed, worker_id, step, 1]).bit_generator.state
            losses = compute_stage2_losses(model, masker, rows, triples)
            losses.total.backward()
            grads = _flatten([param.grad if param.grad is not None
                              else np.zeros_like(param.data)
                              for param in params])
            conn.send(("ok", step, grads,
                       {"total": losses.value, "mask": losses.mask,
                        "ke": losses.ke,
                        "numeric_regression": losses.numeric_regression},
                       losses.tokens))
        except Exception:  # surfaced to the parent as WorkerPoolError
            conn.send(("err", step, traceback.format_exc()))


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    conn: object
    worker_id: int


class GradientWorkerPool:
    """N forked replicas computing sharded forward/backward passes.

    The parent broadcasts the flattened parameter vector and a shard of the
    step's batches to each worker; workers reply with flattened gradients
    which the parent combines as a shard-size-weighted mean — equivalent in
    expectation to the serial gradient of the full batch.  ``fork`` start
    method only (replicas inherit the model without pickling); callers fall
    back to the serial path when fork is unavailable or startup fails.
    """

    def __init__(self, model, num_workers: int, base_seed: int,
                 straggler_timeout_s: float = 120.0):
        if num_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerPoolError("fork start method unavailable")
        self._params = model.parameters()
        self.num_workers = num_workers
        self.straggler_timeout_s = straggler_timeout_s
        context = multiprocessing.get_context("fork")
        self._workers: list[_WorkerHandle] = []
        try:
            for worker_id in range(num_workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, model, model.config.masking_rate,
                          base_seed, worker_id),
                    daemon=True)
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(process, parent_conn,
                                                   worker_id))
        except Exception as error:
            self.close()
            raise WorkerPoolError(f"worker startup failed: {error}") from error

    @staticmethod
    def _shard(items: list | None, count: int) -> list[list]:
        if not items:
            return [[] for _ in range(count)]
        bounds = np.linspace(0, len(items), count + 1).astype(int)
        return [items[bounds[i]:bounds[i + 1]] for i in range(count)]

    def step(self, step_index: int, rows: list | None,
             triples: list | None) -> tuple[list[np.ndarray], StepLosses]:
        """One data-parallel forward/backward; returns (grads, losses).

        Raises :class:`WorkerPoolError` on worker failure or straggler
        timeout; the caller is expected to fall back to the serial path.
        """
        flat_params = _flatten([p.data for p in self._params])
        row_shards = self._shard(rows, self.num_workers)
        triple_shards = self._shard(triples, self.num_workers)
        active: list[tuple[_WorkerHandle, int]] = []
        for handle, row_shard, triple_shard in zip(self._workers, row_shards,
                                                   triple_shards):
            weight = len(row_shard) + len(triple_shard)
            if weight == 0:
                continue
            try:
                handle.conn.send(("step", step_index, flat_params,
                                  row_shard, triple_shard))
            except (OSError, ValueError) as error:
                raise WorkerPoolError(
                    f"worker {handle.worker_id} unreachable: "
                    f"{error}") from error
            active.append((handle, weight))
        if not active:
            raise WorkerPoolError("no worker received a non-empty shard")

        total_weight = float(sum(w for _, w in active))
        deadline = time.monotonic() + self.straggler_timeout_s
        grads_sum: np.ndarray | None = None
        losses = {"total": 0.0, "mask": 0.0, "ke": 0.0,
                  "numeric_regression": 0.0}
        tokens = 0
        for handle, weight in active:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(remaining):
                raise WorkerPoolError(
                    f"straggler: worker {handle.worker_id} exceeded "
                    f"{self.straggler_timeout_s:.1f}s")
            reply = handle.conn.recv()
            if reply[0] != "ok":
                raise WorkerPoolError(
                    f"worker {handle.worker_id} failed at step "
                    f"{step_index}:\n{reply[2]}")
            _, _, grads, parts, shard_tokens = reply
            share = weight / total_weight
            grads_sum = (grads * share if grads_sum is None
                         else grads_sum + grads * share)
            for key in losses:
                losses[key] += parts[key] * share
            tokens += shard_tokens
        step_losses = StepLosses(total=Tensor(losses["total"]),
                                 mask=losses["mask"], ke=losses["ke"],
                                 numeric_regression=losses[
                                     "numeric_regression"],
                                 tokens=tokens)
        return _split_flat(grads_sum, self._params), step_losses

    def close(self) -> None:
        """Stop and join every worker (terminating unresponsive ones)."""
        for handle in self._workers:
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
        self._workers = []

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The runtime
# ----------------------------------------------------------------------
@dataclass
class RuntimeConfig:
    """Knobs of the fault-tolerant runtime."""

    run_dir: str | Path
    workers: int = 1
    checkpoint_every_steps: int = 50
    checkpoint_every_s: float | None = None
    keep_last: int = 3
    straggler_timeout_s: float = 120.0
    handle_signals: bool = True
    extra: dict = field(default_factory=dict)  # recorded in every snapshot


class TrainingRuntime:
    """Runs a retrainer with checkpoint/resume, workers, and a journal."""

    def __init__(self, retrainer: KTeleBertRetrainer, config: RuntimeConfig):
        self.retrainer = retrainer
        self.config = config
        self.run_dir = Path(config.run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.journal = RunJournal(self.run_dir / JOURNAL_NAME)
        self.snapshots = SnapshotStore(self.run_dir / SNAPSHOT_DIR,
                                       keep_last=config.keep_last)
        self._pool: GradientWorkerPool | None = None
        self._parallel_disabled = False
        self._stop_signal: int | None = None
        self._last_checkpoint_time = time.monotonic()
        self.interrupted = False

    # -- resume --------------------------------------------------------
    def resume_if_available(self) -> int | None:
        """Restore the latest snapshot if one exists; returns its step."""
        state = self.snapshots.load_latest()
        if state is None:
            return None
        state.apply(self.retrainer.model, self.retrainer.optimizer)
        self.retrainer.load_state_dict(state.trainer_state)
        self.journal.append("resume", step=state.step, loss=state.loss)
        return state.step

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, reason: str = "cadence") -> Path:
        """Write a snapshot of the current training state."""
        retrainer = self.retrainer
        step = retrainer.step_index
        loss = retrainer.log.total[-1] if retrainer.log.total else float("inf")
        tasks = (sorted(retrainer.strategy.tasks_at(step))
                 if step < retrainer.strategy.total_steps else [])
        path = self.snapshots.save(
            retrainer.model, retrainer.optimizer, retrainer.state_dict(),
            step=step, loss=loss,
            extra={"reason": reason, "mtl_phase": tasks,
                   "workers": self.config.workers, **self.config.extra})
        self._last_checkpoint_time = time.monotonic()
        self.journal.append("checkpoint", step=step, loss=loss,
                            path=path.name, reason=reason)
        return path

    def _checkpoint_due(self) -> bool:
        step = self.retrainer.step_index
        every = self.config.checkpoint_every_steps
        if every and step % every == 0:
            return True
        cadence_s = self.config.checkpoint_every_s
        return bool(
            cadence_s
            and time.monotonic() - self._last_checkpoint_time >= cadence_s)

    # -- signals -------------------------------------------------------
    def _install_signals(self) -> dict:
        if not self.config.handle_signals:
            return {}
        previous = {}

        def _request_stop(signum, frame):
            self._stop_signal = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _request_stop)
            except ValueError:  # not in the main thread
                break
        return previous

    @staticmethod
    def _restore_signals(previous: dict) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- stepping ------------------------------------------------------
    def _ensure_pool(self) -> GradientWorkerPool | None:
        if self.config.workers < 2 or self._parallel_disabled:
            return None
        if self._pool is None:
            try:
                self._pool = GradientWorkerPool(
                    self.retrainer.model, self.config.workers,
                    base_seed=self.retrainer.seed,
                    straggler_timeout_s=self.config.straggler_timeout_s)
            except WorkerPoolError as error:
                self._degrade(f"pool startup failed: {error}")
        return self._pool

    def _degrade(self, reason: str) -> None:
        self._parallel_disabled = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.journal.append("fallback_serial", reason=reason,
                            step=self.retrainer.step_index)

    def train_step(self) -> StepLosses:
        """One runtime step: parallel when possible, serial otherwise."""
        retrainer = self.retrainer
        pool = self._ensure_pool()
        if pool is None:
            tasks = retrainer.advance()
            rows, triples = retrainer.draw_batches(tasks)
            retrainer.optimizer.zero_grad()
            losses = retrainer.compute_losses(rows, triples)
            losses.total.backward()
            retrainer.finish_step(losses)
            return losses

        tasks = retrainer.advance()
        rows, triples = retrainer.draw_batches(tasks)
        step_index = retrainer.step_index - 1
        try:
            grads, losses = pool.step(step_index, rows, triples)
        except WorkerPoolError as error:
            self._degrade(str(error))
            retrainer.optimizer.zero_grad()
            losses = retrainer.compute_losses(rows, triples)
            losses.total.backward()
            retrainer.finish_step(losses)
            return losses
        retrainer.optimizer.zero_grad()
        for param, grad in zip(retrainer.optimizer.parameters, grads):
            param.grad = grad.copy()
        retrainer.finish_step(losses)
        return losses

    # -- the loop ------------------------------------------------------
    def run(self, max_steps: int | None = None) -> RetrainingLog:
        """Train until the schedule ends, ``max_steps`` pass, or a signal.

        Returns the loss log; ``self.interrupted`` tells apart a clean
        completion from a signal-triggered stop (which leaves behind a
        final checkpoint and an ``interrupted`` journal event).
        """
        retrainer = self.retrainer
        retrainer.model.train()
        total_steps = retrainer.strategy.total_steps
        resumed_from = retrainer.step_index if retrainer.step_index else None
        self.journal.append("run_start", step=retrainer.step_index,
                            total_steps=total_steps,
                            workers=self.config.workers,
                            resumed_from=resumed_from)
        previous_handlers = self._install_signals()
        self.interrupted = False
        steps_done = 0
        self._last_checkpoint_time = time.monotonic()
        try:
            while retrainer.step_index < total_steps:
                if max_steps is not None and steps_done >= max_steps:
                    break
                if self._stop_signal is not None:
                    self.interrupted = True
                    self.checkpoint(reason=f"signal {self._stop_signal}")
                    self.journal.append("interrupted",
                                        step=retrainer.step_index,
                                        signal=self._stop_signal)
                    break
                start = time.perf_counter()
                losses = self.train_step()
                wall = time.perf_counter() - start
                steps_done += 1
                self.journal.append(
                    "step", step=retrainer.step_index, loss=losses.value,
                    mask=losses.mask, ke=losses.ke,
                    numeric_regression=losses.numeric_regression,
                    tokens=losses.tokens,
                    tokens_per_sec=losses.tokens / wall if wall > 0 else 0.0,
                    wall_s=wall)
                if self._checkpoint_due():
                    self.checkpoint()
            else:
                self.checkpoint(reason="final")
                self.journal.append("run_complete",
                                    step=retrainer.step_index)
        finally:
            self._restore_signals(previous_handlers)
            if self._pool is not None:
                self._pool.close()
                self._pool = None
        return retrainer.log
