"""Stage-2 re-training loop (Sec. IV-E).

Runs a :class:`~repro.training.mtl.MtlStrategy` over the stage-2 datasets:
each step activates the strategy's task set — masking reconstruction (which
carries `L_num` on numeric rows) and/or knowledge embedding — sums the active
losses, and updates all parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.ktelebert import KTeleBert
from repro.nn.optim import Adam, clip_grad_norm
from repro.training.batching import BatchIterator
from repro.training.masking import DynamicMasker
from repro.training.mtl import MtlStrategy, TASK_KE, TASK_MASK
from repro.training.stage2 import Stage2Data


@dataclass
class RetrainingLog:
    """Per-step loss history of a stage-2 run."""

    total: list[float] = field(default_factory=list)
    mask: list[float] = field(default_factory=list)
    ke: list[float] = field(default_factory=list)
    numeric_regression: list[float] = field(default_factory=list)


class KTeleBertRetrainer:
    """Owns the optimizer, batching, and strategy schedule for stage 2."""

    def __init__(self, model: KTeleBert, data: Stage2Data,
                 strategy: MtlStrategy, seed: int = 0,
                 learning_rate: float = 1e-3, batch_size: int = 8,
                 ke_batch_size: int = 4, grad_clip: float = 5.0):
        self.model = model
        self.data = data
        self.strategy = strategy
        self.rng = np.random.default_rng(seed + 17)
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.grad_clip = grad_clip
        self.masker = DynamicMasker(model.tokenizer.vocab, self.rng,
                                    masking_rate=model.config.masking_rate)
        self.mask_batches = BatchIterator(data.mask_rows, batch_size, self.rng)
        self.ke_batches = (BatchIterator(data.triple_rows, ke_batch_size,
                                         self.rng)
                           if data.triple_rows else None)
        self.log = RetrainingLog()
        self._step = 0

    def train_step(self) -> float:
        """Run one step of the strategy schedule."""
        if self._step >= self.strategy.total_steps:
            raise RuntimeError("strategy schedule exhausted")
        tasks = self.strategy.tasks_at(self._step)
        self._step += 1
        self.optimizer.zero_grad()

        total = None
        mask_value = 0.0
        ke_value = 0.0
        reg_value = 0.0
        if TASK_MASK in tasks:
            rows = self.mask_batches.next_batch()
            loss, numeric = self.model.masked_lm_loss(rows, self.masker)
            total = loss
            mask_value = float(loss.data)
            if numeric is not None:
                reg_value = numeric.regression
        if TASK_KE in tasks and self.ke_batches is not None:
            triples = self.ke_batches.next_batch()
            ke = self.model.ke_loss(triples)
            total = ke if total is None else total + ke
            ke_value = float(ke.data)
        if total is None:
            raise RuntimeError(f"no active task at step {self._step - 1}")

        total.backward()
        clip_grad_norm(self.optimizer.parameters, self.grad_clip)
        self.optimizer.step()

        value = float(total.data)
        self.log.total.append(value)
        self.log.mask.append(mask_value)
        self.log.ke.append(ke_value)
        self.log.numeric_regression.append(reg_value)
        return value

    def train(self) -> RetrainingLog:
        """Run the full schedule."""
        self.model.train()
        while self._step < self.strategy.total_steps:
            self.train_step()
        return self.log
