"""Stage-2 re-training loop (Sec. IV-E).

Runs a :class:`~repro.training.mtl.MtlStrategy` over the stage-2 datasets:
each step activates the strategy's task set — masking reconstruction (which
carries `L_num` on numeric rows) and/or knowledge embedding — sums the active
losses, and updates all parameters.

The step is decomposed into ``advance`` (schedule cursor), ``draw_batches``
(consume the shuffled iterators), ``compute_losses`` (forward), and
``finish_step`` (clip + optimizer update + logging) so that the fault-tolerant
runtime (:mod:`repro.training.runtime`) can run the forward/backward half on
worker processes and feed averaged gradients back through the same update
path.  ``state_dict`` / ``load_state_dict`` capture everything the loop owns
besides model weights and optimizer moments — RNG stream, batch cursors, step
counter, and loss history — for bit-exact checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.ktelebert import KTeleBert
from repro.nn.optim import Adam, clip_grad_norm
from repro.tensor.tensor import Tensor
from repro.training.batching import BatchIterator
from repro.training.masking import DynamicMasker
from repro.training.mtl import MtlStrategy, TASK_KE, TASK_MASK
from repro.training.stage2 import Stage2Data


@dataclass
class RetrainingLog:
    """Per-step loss history of a stage-2 run."""

    total: list[float] = field(default_factory=list)
    mask: list[float] = field(default_factory=list)
    ke: list[float] = field(default_factory=list)
    numeric_regression: list[float] = field(default_factory=list)


@dataclass
class StepLosses:
    """One step's summed loss tensor plus its scalar decomposition.

    ``tokens`` counts the masked-stream tokens (incl. ``[CLS]``/``[SEP]``)
    that flowed through the encoder — the unit of the journal's
    tokens-per-second throughput figure.
    """

    total: Tensor
    mask: float = 0.0
    ke: float = 0.0
    numeric_regression: float = 0.0
    tokens: int = 0

    @property
    def value(self) -> float:
        return float(self.total.data)


def compute_stage2_losses(model: KTeleBert, masker: DynamicMasker,
                          rows: list | None,
                          triples: list | None) -> StepLosses:
    """Forward pass of one stage-2 step over explicit batches.

    Shared by the serial retrainer and the data-parallel workers (which call
    it on a shard of the batch with their own deterministic RNG stream).
    """
    total = None
    mask_value = 0.0
    ke_value = 0.0
    reg_value = 0.0
    tokens = 0
    if rows:
        loss, numeric = model.masked_lm_loss(rows, masker)
        total = loss
        mask_value = float(loss.data)
        tokens += getattr(model, "last_batch_tokens", 0)
        if numeric is not None:
            reg_value = numeric.regression
    if triples:
        ke = model.ke_loss(triples)
        total = ke if total is None else total + ke
        ke_value = float(ke.data)
    if total is None:
        raise RuntimeError("no batch produced a loss (empty task set?)")
    return StepLosses(total=total, mask=mask_value, ke=ke_value,
                      numeric_regression=reg_value, tokens=tokens)


class KTeleBertRetrainer:
    """Owns the optimizer, batching, and strategy schedule for stage 2."""

    def __init__(self, model: KTeleBert, data: Stage2Data,
                 strategy: MtlStrategy, seed: int = 0,
                 learning_rate: float = 1e-3, batch_size: int = 8,
                 ke_batch_size: int = 4, grad_clip: float = 5.0):
        self.model = model
        self.data = data
        self.strategy = strategy
        self.seed = seed
        self.rng = np.random.default_rng(seed + 17)
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.grad_clip = grad_clip
        self.masker = DynamicMasker(model.tokenizer.vocab, self.rng,
                                    masking_rate=model.config.masking_rate)
        self.mask_batches = BatchIterator(data.mask_rows, batch_size, self.rng)
        self.ke_batches = (BatchIterator(data.triple_rows, ke_batch_size,
                                         self.rng)
                           if data.triple_rows else None)
        self.log = RetrainingLog()
        self._step = 0

    # ------------------------------------------------------------------
    # Step decomposition (used verbatim by the serial path and piecewise
    # by the data-parallel runtime).
    # ------------------------------------------------------------------
    @property
    def step_index(self) -> int:
        """Number of completed steps (the next step to run)."""
        return self._step

    def advance(self) -> frozenset:
        """Consume one schedule slot; returns its active task set."""
        if self._step >= self.strategy.total_steps:
            raise RuntimeError("strategy schedule exhausted")
        tasks = self.strategy.tasks_at(self._step)
        self._step += 1
        return tasks

    def draw_batches(self, tasks: frozenset) -> tuple[list | None,
                                                      list | None]:
        """Pull the mini-batches the active tasks need from the iterators."""
        rows, _, triples, _ = self.draw_batches_with_indices(tasks)
        return rows, triples

    def draw_batches_with_indices(
            self, tasks: frozenset) -> tuple[list | None, np.ndarray | None,
                                             list | None, np.ndarray | None]:
        """Like :meth:`draw_batches` but also returns the dataset indices.

        Consumes the iterators identically (same RNG draws, same cursors),
        so a run may switch freely between this and :meth:`draw_batches`
        — e.g. when the runtime falls back from parallel to serial —
        without changing the batch stream.
        """
        rows = row_indices = triples = triple_indices = None
        if TASK_MASK in tasks:
            rows, row_indices = self.mask_batches.next_batch_with_indices()
        if TASK_KE in tasks and self.ke_batches is not None:
            triples, triple_indices = self.ke_batches.next_batch_with_indices()
        if rows is None and triples is None:
            raise RuntimeError(f"no active task at step {self._step - 1}")
        return rows, row_indices, triples, triple_indices

    def compute_losses(self, rows: list | None,
                       triples: list | None) -> StepLosses:
        """Forward pass over explicit batches (no parameter update)."""
        return compute_stage2_losses(self.model, self.masker, rows, triples)

    def finish_step(self, losses: StepLosses) -> float:
        """Clip gradients, apply the optimizer, and record the losses.

        Assumes gradients are already populated — either by
        ``losses.total.backward()`` on the serial path or by the runtime
        writing averaged worker gradients into the parameters.
        """
        clip_grad_norm(self.optimizer.parameters, self.grad_clip)
        self.optimizer.step()
        value = losses.value
        self.log.total.append(value)
        self.log.mask.append(losses.mask)
        self.log.ke.append(losses.ke)
        self.log.numeric_regression.append(losses.numeric_regression)
        return value

    def train_step(self) -> float:
        """Run one step of the strategy schedule."""
        tasks = self.advance()
        rows, triples = self.draw_batches(tasks)
        self.optimizer.zero_grad()
        losses = self.compute_losses(rows, triples)
        losses.total.backward()
        return self.finish_step(losses)

    def train(self) -> RetrainingLog:
        """Run the full schedule."""
        self.model.train()
        while self._step < self.strategy.total_steps:
            self.train_step()
        return self.log

    # ------------------------------------------------------------------
    # Checkpointing (loop state only; model weights and optimizer moments
    # are captured separately by repro.models.checkpoint.save_train_state).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable loop state for bit-exact resume."""
        return {
            "step": self._step,
            "rng": self.rng.bit_generator.state,
            # The model's construction generator keeps being consumed by
            # dropout layers during training; without it a resumed run
            # would draw different dropout masks and diverge.
            "model_rng": self.model.rng.bit_generator.state,
            "mask_batches": self.mask_batches.state(),
            "ke_batches": (self.ke_batches.state()
                           if self.ke_batches is not None else None),
            "log": {
                "total": list(self.log.total),
                "mask": list(self.log.mask),
                "ke": list(self.log.ke),
                "numeric_regression": list(self.log.numeric_regression),
            },
            "strategy": {"name": self.strategy.name,
                         "total_steps": self.strategy.total_steps},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output over an identically built loop."""
        recorded = state["strategy"]
        if (recorded["name"] != self.strategy.name
                or recorded["total_steps"] != self.strategy.total_steps):
            raise ValueError(
                f"checkpoint was trained with strategy "
                f"{recorded['name']}/{recorded['total_steps']} but the loop "
                f"was built with "
                f"{self.strategy.name}/{self.strategy.total_steps}")
        if (state["ke_batches"] is None) != (self.ke_batches is None):
            raise ValueError("checkpoint and loop disagree on the KE stream")
        self._step = int(state["step"])
        self.rng.bit_generator.state = state["rng"]
        self.model.rng.bit_generator.state = state["model_rng"]
        self.mask_batches.load_state(state["mask_batches"])
        if self.ke_batches is not None:
            self.ke_batches.load_state(state["ke_batches"])
        log = state["log"]
        self.log = RetrainingLog(
            total=[float(v) for v in log["total"]],
            mask=[float(v) for v in log["mask"]],
            ke=[float(v) for v in log["ke"]],
            numeric_regression=[float(v) for v in log["numeric_regression"]])
