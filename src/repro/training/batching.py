"""Deterministic shuffled mini-batching over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


class BatchIterator:
    """Cycles over a dataset in shuffled mini-batches.

    ``next_batch`` never raises StopIteration — when the epoch is exhausted it
    reshuffles and continues, which matches step-based (rather than
    epoch-based) pre-training loops.
    """

    def __init__(self, items: Sequence, batch_size: int,
                 rng: np.random.Generator, shuffle: bool = True):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if len(items) == 0:
            raise ValueError("empty dataset")
        self.items = list(items)
        self.batch_size = batch_size
        self.rng = rng
        self.shuffle = shuffle
        self._order = np.arange(len(self.items))
        self._cursor = len(self.items)  # force reshuffle on first batch
        self.epochs_completed = -1

    def _reshuffle(self) -> None:
        if self.shuffle:
            self.rng.shuffle(self._order)
        self._cursor = 0
        self.epochs_completed += 1

    def next_batch(self) -> list:
        """Return the next mini-batch (size may shrink at epoch boundary)."""
        return self.next_batch_with_indices()[0]

    def next_batch_with_indices(self) -> tuple[list, np.ndarray]:
        """Next mini-batch plus the dataset indices of its items.

        Consumes the cursor/RNG exactly like :meth:`next_batch`; the index
        array lets the data-parallel runtime ship shard *indices* through
        shared memory instead of pickling the items themselves.
        """
        if self._cursor >= len(self.items):
            self._reshuffle()
        end = min(self._cursor + self.batch_size, len(self.items))
        indices = self._order[self._cursor:end].astype(np.int64, copy=True)
        batch = [self.items[i] for i in indices]
        self._cursor = end
        return batch, indices

    def state(self) -> dict:
        """JSON-serialisable iteration cursor (order, position, epoch).

        Restoring it with :meth:`load_state` makes the next
        :meth:`next_batch` call return exactly what it would have returned
        had the process never stopped — the checkpoint/resume contract of
        the training runtime.
        """
        return {
            "order": [int(i) for i in self._order],
            "cursor": int(self._cursor),
            "epochs_completed": int(self.epochs_completed),
        }

    def load_state(self, state: dict) -> None:
        """Restore a cursor produced by :meth:`state` over the same items."""
        order = np.asarray(state["order"], dtype=np.int64)
        if order.shape != self._order.shape or \
                sorted(order.tolist()) != list(range(len(self.items))):
            raise ValueError("batch iterator state does not match the dataset")
        self._order = order
        self._cursor = int(state["cursor"])
        self.epochs_completed = int(state["epochs_completed"])

    def __iter__(self) -> Iterator[list]:
        """Iterate over exactly one epoch of batches.

        The epoch is an *independent view*: it draws its own shuffle order
        and leaves ``_cursor`` / ``epochs_completed`` untouched, so mixing
        iteration with :meth:`next_batch` never drops items queued in the
        step-based stream.
        """
        order = np.arange(len(self.items))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(self.items), self.batch_size):
            yield [self.items[i] for i in order[start:start + self.batch_size]]
