"""Stage-2 data assembly: causal sentences, machine logs, and Tele-KG triples.

The paper balances 434K causal sentences, 429K machine logs, and 130K triples
(Sec. V-A2).  This module builds the same three datasets from the synthetic
world at our scale and fits the tag normaliser over every (tag, value) pair
that will flow through ANEnc.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.causal import extract_causal_sentences
from repro.corpus.telecorpus import TeleCorpus
from repro.kg.graph import TeleKG
from repro.kg.sampling import NegativeSampler
from repro.kg.serialize import SIGNIFICANT_ATTRIBUTES
from repro.models.ktelebert import NumericRow, TextRow, TripleRow
from repro.numeric.normalization import TagNormalizer
from repro.prompts.templates import (
    wrap_attribute,
    wrap_document_sentence,
    wrap_log_record,
)
from repro.tokenization.tokenizer import basic_tokenize
from repro.world.episodes import FaultEpisode


@dataclass
class Stage2Data:
    """The three balanced re-training datasets plus numeric metadata."""

    causal_rows: list[TextRow]
    log_rows: list          # TextRow (alarms) and NumericRow (KPIs)
    triple_rows: list[TripleRow]
    normalizer: TagNormalizer
    tag_names: list[str]

    @property
    def mask_rows(self) -> list:
        """Rows that feed the masking-reconstruction task."""
        return self.causal_rows + self.log_rows

    def vocabulary(self) -> list[str]:
        """All distinct word tokens appearing in stage-2 texts + surfaces."""
        seen: set[str] = set()
        ordered: list[str] = []
        texts = [r.text for r in self.mask_rows]
        texts += [f"{r.head} {r.relation} {r.tail}" for r in self.triple_rows]
        for r in self.triple_rows:
            texts += [f"{h} {t}" for h, t in r.negatives]
        for text in texts:
            for token in basic_tokenize(text):
                if token not in seen:
                    seen.add(token)
                    ordered.append(token)
        return ordered

    def describe(self) -> dict[str, int]:
        return {
            "causal_sentences": len(self.causal_rows),
            "machine_logs": len(self.log_rows),
            "knowledge_triples": len(self.triple_rows),
            "numeric_tags": len(self.tag_names),
        }


def build_stage2_data(corpus: TeleCorpus, episodes: list[FaultEpisode],
                      kg: TeleKG, seed: int = 0,
                      ke_negatives: int = 10,
                      max_logs: int | None = None,
                      max_triples: int | None = None,
                      signaling_flows=None,
                      config_records=None) -> Stage2Data:
    """Assemble the stage-2 datasets.

    * causal sentences — extracted from the Tele-Corpus with the Sec. IV-A1
      rules, then prompt-wrapped as documents;
    * machine logs — every episode record through its prompt template (KPI
      records become :class:`NumericRow`);
    * triples — every KG relational triple with ``ke_negatives`` filtered
      corruptions, plus significant numeric attribute triples as NumericRows
      in the log stream (numeric data "also lies in Tele-KG", Sec. IV-B).
    """
    rng = np.random.default_rng(seed + 91)

    causal = extract_causal_sentences(corpus.sentences)
    causal_rows = [TextRow(wrap_document_sentence(s)) for s in causal]

    log_rows: list = []
    tags: list[str] = []
    values: list[float] = []
    for episode in episodes:
        for record in episode.records:
            wrapped = wrap_log_record(record)
            if record.kind == "kpi":
                log_rows.append(NumericRow(text=wrapped, tag=record.tag,
                                           value=float(record.value)))
                tags.append(record.tag)
                values.append(float(record.value))
            else:
                log_rows.append(TextRow(wrapped))

    # Future-work data sources (Sec. IV-B): signaling flows and configuration
    # records join the mask-reconstruction stream when provided; numeric
    # configuration parameters flow through ANEnc like KPI values.
    from repro.prompts.templates import wrap_config, wrap_signaling

    for flow in signaling_flows or []:
        for record in flow.records:
            log_rows.append(TextRow(wrap_signaling(flow.procedure,
                                                   record.render())))
    for record in config_records or []:
        wrapped = wrap_config(record.node, record.parameter, record.value,
                              record.kind)
        if record.is_numeric:
            log_rows.append(NumericRow(text=wrapped, tag=record.parameter,
                                       value=float(record.value)))
            tags.append(record.parameter)
            values.append(float(record.value))
        else:
            log_rows.append(TextRow(wrapped))

    # Numeric attribute triples join the numeric stream.
    for fact in kg.attributes:
        if not fact.is_numeric or fact.attribute not in SIGNIFICANT_ATTRIBUTES:
            continue
        surface = kg.entity(fact.entity).surface
        tag = f"{fact.attribute} of {surface}"
        text = wrap_attribute(surface, fact.attribute, fact.value)
        log_rows.append(NumericRow(text=text, tag=tag, value=float(fact.value)))
        tags.append(tag)
        values.append(float(fact.value))

    if max_logs is not None and len(log_rows) > max_logs:
        index = rng.choice(len(log_rows), size=max_logs, replace=False)
        log_rows = [log_rows[i] for i in sorted(index)]

    sampler = NegativeSampler(kg, rng)
    kg_triples = kg.triples
    if max_triples is not None and len(kg_triples) > max_triples:
        index = rng.choice(len(kg_triples), size=max_triples, replace=False)
        kg_triples = [kg_triples[i] for i in sorted(index)]
    triple_rows: list[TripleRow] = []
    for triple in kg_triples:
        negatives = tuple(
            (kg.entity(n.head).surface, kg.entity(n.tail).surface)
            for n in sampler.corrupt(triple, ke_negatives))
        triple_rows.append(TripleRow(
            head=kg.entity(triple.head).surface,
            relation=triple.relation,
            tail=kg.entity(triple.tail).surface,
            negatives=negatives))

    if not values:
        raise ValueError("stage-2 data contains no numeric observations")
    normalizer = TagNormalizer().fit(tags, values)
    tag_names = sorted(set(tags))
    return Stage2Data(causal_rows=causal_rows, log_rows=log_rows,
                      triple_rows=triple_rows, normalizer=normalizer,
                      tag_names=tag_names)
