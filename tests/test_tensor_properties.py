"""Property-based tests: Tensor ops must agree with numpy on random inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients

finite = st.floats(min_value=-10.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False)


def safe_arrays(max_dims=3, min_side=1, max_side=4):
    return arrays(dtype=np.float64,
                  shape=array_shapes(min_dims=1, max_dims=max_dims,
                                     min_side=min_side, max_side=max_side),
                  elements=finite)


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_add_matches_numpy(values):
    assert np.array_equal((Tensor(values) + Tensor(values)).data, values * 2)


@settings(max_examples=40, deadline=None)
@given(safe_arrays(), finite)
def test_scalar_ops_match_numpy(values, scalar):
    t = Tensor(values)
    assert np.allclose((t * scalar).data, values * scalar)
    assert np.allclose((t + scalar).data, values + scalar)
    assert np.allclose((t - scalar).data, values - scalar)


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_exp_log_inverse(values):
    t = Tensor(np.abs(values) + 0.5)
    assert np.allclose(t.log().exp().data, t.data, rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_sum_matches_numpy(values):
    assert np.allclose(Tensor(values).sum().data, values.sum())
    assert np.allclose(Tensor(values).sum(axis=0).data, values.sum(axis=0))


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_mean_matches_numpy(values):
    assert np.allclose(Tensor(values).mean().data, values.mean())


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_max_matches_numpy(values):
    assert np.allclose(Tensor(values).max().data, values.max())


@settings(max_examples=40, deadline=None)
@given(safe_arrays(max_dims=2))
def test_transpose_involution(values):
    t = Tensor(values)
    assert np.array_equal(t.T.T.data if values.ndim == 2 else t.data,
                          values)


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_relu_non_negative_and_sparse_consistent(values):
    out = Tensor(values).relu().data
    assert (out >= 0).all()
    assert np.array_equal(out > 0, values > 0)


@settings(max_examples=40, deadline=None)
@given(safe_arrays())
def test_sigmoid_bounds_and_symmetry(values):
    t = Tensor(values)
    s = t.sigmoid().data
    assert ((s > 0) & (s < 1)).all()
    assert np.allclose(s + Tensor(-values).sigmoid().data, 1.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_matmul_matches_numpy(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_composite_expression_gradient(seed):
    """Gradcheck a nontrivial random composite expression."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(0, 0.5, size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(0, 0.5, size=(4, 2)), requires_grad=True)

    def fn(a, b):
        h = (a @ b).tanh()
        return (h * h).sum() + a.sigmoid().mean()

    check_gradients(fn, [a, b])


@settings(max_examples=25, deadline=None)
@given(safe_arrays(max_dims=2, min_side=2))
def test_grad_of_sum_is_ones(values):
    t = Tensor(values, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(values))


@settings(max_examples=25, deadline=None)
@given(safe_arrays(max_dims=1, min_side=2, max_side=6),
       st.integers(min_value=0, max_value=5))
def test_getitem_gradient_is_indicator(values, index):
    index = index % len(values)
    t = Tensor(values, requires_grad=True)
    t[index].sum().backward()
    expected = np.zeros_like(values)
    expected[index] = 1.0
    assert np.array_equal(t.grad, expected)
