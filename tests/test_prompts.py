"""Tests for prompt templates (Fig. 3)."""

from repro.prompts import (
    ALL_PROMPT_TOKENS,
    FIELD_SEPARATOR,
    wrap_alarm_log,
    wrap_attribute,
    wrap_document_sentence,
    wrap_entity,
    wrap_kpi_log,
    wrap_log_record,
    wrap_triple,
)
from repro.tokenization import basic_tokenize
from repro.world import TelecomWorld


class TestPromptTokens:
    def test_eight_prompt_tokens(self):
        assert len(ALL_PROMPT_TOKENS) == 8
        assert "[ALM]" in ALL_PROMPT_TOKENS
        assert "[NUM]" in ALL_PROMPT_TOKENS

    def test_prompt_tokens_survive_tokenization(self):
        wrapped = wrap_alarm_log("link failure", severity="critical")
        tokens = basic_tokenize(wrapped)
        assert tokens[0] == "[ALM]"
        assert "[ATTR]" in tokens


class TestTemplates:
    def test_alarm_template(self):
        out = wrap_alarm_log("The NF destination service is unreachable",
                             severity="critical", location="SMF-01",
                             attributes={"interface": "N11"})
        assert out.startswith("[ALM] The NF destination service")
        assert f"[ATTR] severity {FIELD_SEPARATOR} critical" in out
        assert "[LOC] SMF-01" in out
        assert f"[ATTR] interface {FIELD_SEPARATOR} N11" in out

    def test_alarm_minimal(self):
        out = wrap_alarm_log("link failure")
        assert out == "[ALM] link failure"

    def test_kpi_template_marks_numeric(self):
        out = wrap_kpi_log("registration success rate", value=97.5)
        assert out.startswith("[KPI] registration success rate")
        assert "[NUM] 97.5" in out

    def test_kpi_without_value(self):
        out = wrap_kpi_log("registration success rate")
        assert "[NUM]" not in out

    def test_triple_template(self):
        out = wrap_triple("alarm A", "trigger", "KPI B")
        assert out == "[ENT] alarm A | [REL] trigger | [ENT] KPI B"

    def test_attribute_numeric_gets_num_token(self):
        out = wrap_attribute("KPI X", "normal high", 42.0)
        assert "[NUM] 42" in out

    def test_attribute_string_has_no_num_token(self):
        out = wrap_attribute("alarm A", "severity", "major")
        assert "[NUM]" not in out
        assert out.endswith("major")

    def test_attribute_bool_not_numeric(self):
        out = wrap_attribute("alarm A", "acknowledged", True)
        assert "[NUM]" not in out

    def test_entity_with_attributes(self):
        out = wrap_entity("alarm A", {"severity": "major", "count": 3})
        assert out.startswith("[ENT] alarm A")
        assert "[ATTR] severity | major" in out
        assert "[ATTR] count | [NUM] 3" in out

    def test_document_template(self):
        assert wrap_document_sentence("hello") == "[DOC] hello"


class TestLogRecordDispatch:
    def test_dispatch(self):
        world = TelecomWorld.generate(seed=5)
        episode = world.simulator().simulate(0, background_kpi_count=3)
        for record in episode.records:
            wrapped = wrap_log_record(record)
            if record.kind == "alarm":
                assert wrapped.startswith("[ALM]")
            else:
                assert wrapped.startswith("[KPI]")
                assert "[NUM]" in wrapped
