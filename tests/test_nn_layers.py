"""Tests for nn modules: registration, layers, attention, transformer."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


def rng():
    return np.random.default_rng(3)


class TestModule:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 3, rng())
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self):
        block = nn.TransformerEncoderLayer(8, 2, 16, rng())
        names = [n for n, _ in block.named_parameters()]
        assert "attention.query.weight" in names
        assert "ffn_norm.bias" in names

    def test_num_parameters(self):
        layer = nn.Linear(4, 3, rng())
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        encoder = nn.TransformerEncoder(2, 8, 2, 16, rng(), dropout=0.1)
        encoder.eval()
        assert all(not m.training for m in encoder.modules())
        encoder.train()
        assert all(m.training for m in encoder.modules())

    def test_zero_grad(self):
        layer = nn.Linear(3, 2, rng())
        out = layer(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Linear(4, 3, np.random.default_rng(1))
        b = nn.Linear(4, 3, np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_strict_mismatch(self):
        layer = nn.Linear(4, 3, rng())
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})

    def test_load_state_dict_shape_mismatch(self):
        layer = nn.Linear(4, 3, rng())
        bad = {"weight": np.zeros((2, 2)), "bias": np.zeros(3)}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2, rng()) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 7, rng())
        out = layer(Tensor(np.zeros((2, 3, 5))))
        assert out.shape == (2, 3, 7)

    def test_no_bias(self):
        layer = nn.Linear(5, 7, rng(), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = nn.Linear(3, 2, rng())
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda x: (layer(x) ** 2).sum(), [x])


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng())
        out = emb(np.array([[1, 2], [3, 3]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[1, 0], out.data[1, 1])

    def test_out_of_range_raises(self):
        emb = nn.Embedding(10, 4, rng())
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_gradient_accumulates_for_repeated_tokens(self):
        emb = nn.Embedding(5, 3, rng())
        out = emb(np.array([2, 2, 2])).sum()
        out.backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_grow_appends_rows(self):
        emb = nn.Embedding(5, 3, rng())
        old = emb.weight.data.copy()
        emb.grow(2, rng())
        assert emb.num_embeddings == 7
        assert emb.weight.data.shape == (7, 3)
        assert np.allclose(emb.weight.data[:5], old)

    def test_grow_zero_is_noop(self):
        emb = nn.Embedding(5, 3, rng())
        emb.grow(0, rng())
        assert emb.num_embeddings == 5


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng())
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_weights_are_distributions(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng())
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 8)))
        _, weights = attn(x, return_weights=True)
        assert weights.shape == (2, 2, 5, 5)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_mask_blocks_padding(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng())
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)))
        mask = np.array([[1, 1, 0, 0]])
        _, weights = attn(x, attention_mask=mask, return_weights=True)
        assert np.allclose(weights.data[..., 2:], 0.0, atol=1e-8)

    def test_indivisible_heads_raises(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, 2, rng())

    def test_gradients_flow_to_all_projections(self):
        attn = nn.MultiHeadSelfAttention(4, 2, rng())
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 4)))
        attn(x).sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, name


class TestTransformer:
    def test_encoder_shape(self):
        enc = nn.TransformerEncoder(2, 8, 2, 16, rng())
        out = enc(Tensor(np.random.default_rng(0).normal(size=(3, 6, 8))))
        assert out.shape == (3, 6, 8)

    def test_return_all_layers(self):
        enc = nn.TransformerEncoder(3, 8, 2, 16, rng())
        out, layers = enc(Tensor(np.zeros((1, 4, 8))), return_all_layers=True)
        assert len(layers) == 3
        assert layers[-1] is out

    def test_padding_invariance(self):
        """Valid positions should be unaffected by what sits in padding."""
        enc = nn.TransformerEncoder(1, 8, 2, 16, rng()).eval()
        rng0 = np.random.default_rng(0)
        x = rng0.normal(size=(1, 5, 8))
        mask = np.array([[1, 1, 1, 0, 0]])
        out1 = enc(Tensor(x), attention_mask=mask).data
        x2 = x.copy()
        x2[0, 3:] = rng0.normal(size=(2, 8))
        out2 = enc(Tensor(x2), attention_mask=mask).data
        assert np.allclose(out1[0, :3], out2[0, :3])

    def test_gradients_reach_first_layer(self):
        enc = nn.TransformerEncoder(2, 8, 2, 16, rng())
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)))
        enc(x).sum().backward()
        first = enc.layers[0]
        assert first.attention.query.weight.grad is not None


class TestSequential:
    def test_chained_forward(self):
        model = nn.Sequential(nn.Linear(4, 8, rng()), nn.ReLU(),
                              nn.Linear(8, 2, rng()))
        out = model(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_indexing(self):
        inner = nn.Linear(4, 4, rng())
        model = nn.Sequential(inner)
        assert model[0] is inner
