"""Shared pytest plumbing for the unit-test tier.

Provides the ``@pytest.mark.timeout(seconds)`` hard watchdog used by the
fault-injection tests: a reintroduced deadlock must surface as a *failed*
CI job with thread tracebacks, not a job that hangs until the runner's
global timeout kills it silently.

Implemented on :func:`faulthandler.dump_traceback_later` (stdlib, no
``pytest-timeout`` dependency): when the marked test exceeds its budget,
every thread's traceback is dumped to stderr and the process exits
non-zero.  The timer is cancelled on normal completion, so passing tests
pay nothing.
"""

from __future__ import annotations

import faulthandler

import pytest


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    seconds = None
    if marker is not None:
        seconds = float(marker.args[0]) if marker.args else 60.0
    if seconds:
        faulthandler.dump_traceback_later(seconds, exit=True)
    try:
        yield
    finally:
        if seconds:
            faulthandler.cancel_dump_traceback_later()
