"""Tests for the TCP socket frontend: tenancy, admission, drain, loadgen.

Extends the fault-injection patterns of ``test_serving_resilience.py``
to the network layer.  The regression class under guard here: a burst of
clients beyond quota — or a wedged encoder underneath — must produce
*structured rejections in milliseconds*, never a hung socket; and
SIGTERM must drain in bounded time.  Every socket test runs under the
hard ``@pytest.mark.timeout`` watchdog from tests/conftest.py.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.netserve import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    NetServeConfig,
    TeleServer,
    TenantRegistry,
    TenantSpec,
    TokenBucket,
)
from repro.netserve import protocol
from repro.serving import (
    Deadline,
    FaultAnalysisService,
    MetricsRegistry,
    ServiceConfig,
)
from repro.service import RandomProvider


def _tight_config(**overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=2, timeout_s=0.3,
                    max_retries=1, backoff_s=0.01, close_timeout_s=5.0,
                    max_workers=4)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _poll(predicate, timeout=5.0, interval=0.01) -> bool:
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class HangingProvider(RandomProvider):
    """Every encode blocks until :meth:`release` — a wedged encoder."""

    label = "Hanging"

    def __init__(self, dim=8):
        super().__init__(dim=dim, seed=0)
        self._release = threading.Event()
        self._lock = threading.Lock()
        self.started = 0

    def release(self) -> None:
        self._release.set()

    def encode_names(self, names):
        with self._lock:
            self.started += 1
        self._release.wait()
        return super().encode_names(names)


class _Client:
    """Line-framed test client; every op has a bounded socket timeout."""

    def __init__(self, address, timeout=5.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self._buffer = b""

    def send_line(self, text: str) -> None:
        self.sock.sendall(text.encode() + b"\n")

    def read(self) -> dict:
        while b"\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        raw, _, self._buffer = self._buffer.partition(b"\n")
        return json.loads(raw)

    def request(self, payload: dict) -> dict:
        self.send_line(json.dumps(payload))
        return self.read()

    def close(self) -> None:
        self.sock.close()


@pytest.fixture
def server_factory():
    """Build (service, server, address) stacks; tears all of them down."""
    stacks = []

    def build(provider=None, tenants=None, admission=None, config=None,
              service_config=None, index=None):
        service = FaultAnalysisService(
            provider or RandomProvider(dim=8, seed=0),
            config=service_config or _tight_config(),
            index=index)
        server = TeleServer(
            service,
            tenants or TenantRegistry.single("k-test"),
            admission=admission,
            config=config or NetServeConfig(close_timeout_s=2.0))
        address = server.start()
        stacks.append((service, server))
        return service, server, address

    yield build
    for service, server in stacks:
        server.close(timeout_s=1.0)
        service.close()


# ----------------------------------------------------------------------
# Token bucket / tenant registry
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill_timing(self):
        clock = [100.0]
        bucket = TokenBucket(rate_per_s=10.0, burst=2,
                             clock=lambda: clock[0])
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        granted, retry = bucket.try_acquire()
        assert not granted
        assert retry == pytest.approx(0.1)
        clock[0] += 0.05                      # half a token accrued
        granted, retry = bucket.try_acquire()
        assert not granted
        assert retry == pytest.approx(0.05)
        clock[0] += 0.05
        assert bucket.try_acquire() == (True, 0.0)

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=100.0, burst=3,
                             clock=lambda: clock[0])
        clock[0] += 60.0
        assert bucket.available() == pytest.approx(3.0)

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate_per_s=0.0)
        for _ in range(1000):
            assert bucket.try_acquire() == (True, 0.0)
        assert bucket.available() == float("inf")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestTenantRegistry:
    def test_from_json_and_authenticate(self):
        registry = TenantRegistry.from_json({"tenants": [
            {"name": "a", "api_key": "ka", "rate_per_s": 5, "burst": 2},
            {"name": "b", "api_key": "kb", "max_concurrency": 3},
        ]})
        assert registry.authenticate("ka").name == "a"
        assert registry.authenticate("kb").spec.max_concurrency == 3
        assert registry.authenticate("nope") is None
        assert registry.authenticate(None) is None
        assert registry.authenticate(42) is None

    def test_duplicate_keys_and_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate api_key"):
            TenantRegistry([TenantSpec(name="a", api_key="k"),
                            TenantSpec(name="b", api_key="k")])
        with pytest.raises(ValueError, match="duplicate tenant name"):
            TenantRegistry([TenantSpec(name="a", api_key="k1"),
                            TenantSpec(name="a", api_key="k2")])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown tenant field"):
            TenantRegistry.from_json({"tenants": [
                {"name": "a", "api_key": "k", "rate": 5}]})

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": [
            {"name": "t", "api_key": "k", "rate_per_s": 1.5}]}))
        registry = TenantRegistry.from_file(path)
        assert registry.authenticate("k").spec.rate_per_s == 1.5


# ----------------------------------------------------------------------
# Admission controller (no sockets)
# ----------------------------------------------------------------------
class TestAdmissionController:
    def _tenant(self, **overrides):
        spec = dict(name="t", api_key="k")
        spec.update(overrides)
        return TenantRegistry([TenantSpec(**spec)]).authenticate("k")

    def test_deadline_headroom_gate(self):
        controller = AdmissionController(
            AdmissionConfig(min_headroom_s=0.05))
        tenant = self._tenant()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(tenant, Deadline.after(0.001))
        assert excinfo.value.code == "deadline"
        with controller.admit(tenant, Deadline.after(1.0)):
            pass

    def test_queue_depth_gate(self):
        depth = [0]
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=4),
            queue_depth_fn=lambda: depth[0])
        tenant = self._tenant()
        depth[0] = 4
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(tenant)
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.retry_after_s > 0
        depth[0] = 3
        controller.admit(tenant).release()

    def test_global_inflight_gate_and_release(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=2))
        tenant = self._tenant()
        first = controller.admit(tenant)
        second = controller.admit(tenant)
        assert controller.inflight() == 2
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(tenant)
        assert excinfo.value.code == "overload"
        first.release()
        first.release()                     # idempotent
        assert controller.inflight() == 1
        with controller.admit(tenant):
            pass
        second.release()
        assert controller.inflight() == 0

    def test_tenant_concurrency_gate_releases_global_slot(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=8))
        tenant = self._tenant(max_concurrency=1)
        held = controller.admit(tenant)
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(tenant)
        assert excinfo.value.code == "concurrency"
        # the rejected request returned its global slot
        assert controller.inflight() == 1
        held.release()

    def test_rejection_never_burns_a_rate_token(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=1))
        clock = [0.0]
        tenant = TenantRegistry(
            [TenantSpec(name="t", api_key="k", rate_per_s=1.0, burst=1)],
            clock=lambda: clock[0]).authenticate("k")
        held = controller.admit(tenant)
        tokens_before = tenant.bucket.available()
        with pytest.raises(AdmissionRejected):
            controller.admit(tenant)        # overload, not rate_limit
        assert tenant.bucket.available() == tokens_before
        held.release()

    def test_rate_limit_gate_reports_refill_time(self):
        controller = AdmissionController()
        clock = [0.0]
        tenant = TenantRegistry(
            [TenantSpec(name="t", api_key="k", rate_per_s=10.0, burst=1)],
            clock=lambda: clock[0]).authenticate("k")
        controller.admit(tenant).release()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(tenant)
        assert excinfo.value.code == "rate_limit"
        assert excinfo.value.retry_after_s == pytest.approx(0.1)
        # the rate-limited request also returned its concurrency claim
        assert tenant.inflight == 0
        clock[0] += 0.1
        controller.admit(tenant).release()


# ----------------------------------------------------------------------
# Socket server end-to-end
# ----------------------------------------------------------------------
@pytest.mark.timeout(30)
class TestTeleServer:
    def test_roundtrip_auth_and_protocol_errors(self, server_factory):
        _, _, address = server_factory()
        client = _Client(address)
        try:
            assert client.request({"op": "ping"}) == {"ok": True,
                                                      "op": "ping"}
            good = client.request({"op": "embed", "names": ["a", "b"],
                                   "api_key": "k-test", "id": "req-1"})
            assert good["ok"] and len(good["embeddings"]) == 2
            assert good["id"] == "req-1"

            bad_key = client.request({"op": "embed", "names": ["a"],
                                      "api_key": "wrong"})
            assert not bad_key["ok"] and bad_key["code"] == "auth"

            client.send_line("this is not json")
            garbled = client.read()
            assert not garbled["ok"]
            assert garbled["code"] == "bad_request"

            # the connection survived the protocol error
            assert client.request({"op": "ping"})["ok"]

            unknown = client.request({"op": "nope", "api_key": "k-test"})
            assert unknown["code"] == "bad_request"
            missing = client.request({"op": "embed", "api_key": "k-test"})
            assert missing["code"] == "bad_request"
        finally:
            client.close()

    def test_concurrency_quota_burst_rejects_never_hangs(
            self, server_factory):
        provider = HangingProvider(dim=8)
        tenants = TenantRegistry([TenantSpec(
            name="t", api_key="k", max_concurrency=2)])
        _, _, address = server_factory(provider=provider, tenants=tenants)

        results = []
        results_lock = threading.Lock()

        def worker(index):
            client = _Client(address, timeout=10.0)
            try:
                response = client.request(
                    {"op": "embed", "names": [f"burst-{index}"],
                     "api_key": "k"})
                with results_lock:
                    results.append(response)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(8)]
        for thread in threads:
            thread.start()
        # over-quota requests answer immediately; quota-holders park on
        # the wedged provider until released
        assert _poll(lambda: len(results) >= 6, timeout=5.0)
        provider.release()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(results) == 8
        rejected = [r for r in results if not r["ok"]]
        assert rejected and all(r["code"] == "concurrency"
                                for r in rejected)
        assert all(r["retry_after_s"] > 0 for r in rejected)
        assert sum(1 for r in results if r["ok"]) >= 2

    def test_rate_limit_refills_after_retry_after(self, server_factory):
        tenants = TenantRegistry([TenantSpec(
            name="t", api_key="k", rate_per_s=50.0, burst=2)])
        _, _, address = server_factory(tenants=tenants)
        client = _Client(address)
        try:
            responses = [client.request({"op": "embed", "names": ["x"],
                                         "api_key": "k"})
                         for _ in range(4)]
            rejected = [r for r in responses if not r["ok"]]
            assert rejected and all(r["code"] == "rate_limit"
                                    for r in rejected)
            retry_after = rejected[-1]["retry_after_s"]
            assert 0 < retry_after <= 0.1
            time.sleep(retry_after + 0.02)
            assert client.request({"op": "embed", "names": ["x"],
                                   "api_key": "k"})["ok"]
        finally:
            client.close()

    def test_per_tenant_isolation(self, server_factory):
        tenants = TenantRegistry([
            TenantSpec(name="greedy", api_key="kg", rate_per_s=10.0,
                       burst=1),
            TenantSpec(name="patient", api_key="kp"),
        ])
        _, _, address = server_factory(tenants=tenants)
        client = _Client(address)
        try:
            greedy = [client.request({"op": "embed", "names": ["g"],
                                      "api_key": "kg"})
                      for _ in range(5)]
            patient = [client.request({"op": "embed", "names": ["p"],
                                       "api_key": "kp"})
                       for _ in range(5)]
            assert any(not r["ok"] for r in greedy)
            assert all(r["ok"] for r in patient), \
                "one tenant's flood must not starve another"
        finally:
            client.close()

    def test_wedged_provider_sheds_load_fast(self, server_factory):
        provider = HangingProvider(dim=8)
        admission_metrics = MetricsRegistry()
        admission = AdmissionController(
            AdmissionConfig(max_inflight=2),
            metrics=admission_metrics)
        service, _, address = server_factory(provider=provider,
                                             admission=admission)
        fillers = [_Client(address, timeout=10.0) for _ in range(2)]
        try:
            for index, filler in enumerate(fillers):
                filler.send_line(json.dumps(
                    {"op": "embed", "names": [f"wedge-{index}"],
                     "api_key": "k-test"}))
            assert _poll(lambda: admission.inflight() == 2, timeout=5.0)

            # the frontend keeps answering while the batcher is stuck:
            # over-admission rejections round-trip within 100ms
            client = _Client(address)
            try:
                for _ in range(5):
                    started = time.perf_counter()
                    response = client.request(
                        {"op": "embed", "names": ["shed"],
                         "api_key": "k-test"})
                    elapsed = time.perf_counter() - started
                    assert not response["ok"]
                    assert response["code"] == "overload"
                    assert response["retry_after_s"] > 0
                    assert elapsed < 0.1, \
                        f"rejection took {elapsed * 1e3:.1f}ms"
                assert client.request({"op": "ping"})["ok"]
            finally:
                client.close()
            counters = admission_metrics.snapshot()["counters"]
            assert counters["netserve.rejections.overload"] == 5
        finally:
            provider.release()
            for filler in fillers:
                filler.close()

    def test_deadline_ms_propagates(self, server_factory):
        provider = HangingProvider(dim=8)
        _, _, address = server_factory(
            provider=provider,
            service_config=_tight_config(timeout_s=5.0, max_retries=2))
        client = _Client(address, timeout=10.0)
        try:
            # below admission headroom: structured rejection, not a wait
            tiny = client.request({"op": "embed", "names": ["a"],
                                   "api_key": "k-test", "deadline_ms": 1})
            assert tiny["code"] == "deadline"

            # admitted, but the 300ms request deadline caps the service
            # budget (5s/attempt x 3 attempts configured)
            started = time.perf_counter()
            response = client.request(
                {"op": "embed", "names": ["a"], "api_key": "k-test",
                 "deadline_ms": 300})
            elapsed = time.perf_counter() - started
            assert not response["ok"]
            assert response["code"] == "unavailable"
            assert elapsed < 2.0, \
                f"deadline did not cap the budget ({elapsed:.2f}s)"

            bad = client.request({"op": "embed", "names": ["a"],
                                  "api_key": "k-test",
                                  "deadline_ms": "soon"})
            assert bad["code"] == "bad_request"
        finally:
            provider.release()
            client.close()

    def test_drain_waits_for_inflight_and_refuses_new(
            self, server_factory):
        provider = HangingProvider(dim=8)
        _, server, address = server_factory(
            provider=provider,
            service_config=_tight_config(timeout_s=5.0, max_retries=0))
        parked = _Client(address, timeout=10.0)
        try:
            parked.send_line(json.dumps({"op": "embed", "names": ["slow"],
                                         "api_key": "k-test"}))
            assert _poll(lambda: server.admission.inflight() == 1,
                         timeout=5.0)
            assert server.drain(timeout_s=0.2) is False, \
                "drain must report the in-flight request"
            assert server.draining
            provider.release()
            assert server.drain(timeout_s=5.0) is True
            # the parked request still got its answer during the drain
            assert parked.read()["ok"]
            # new connections are no longer accepted
            with pytest.raises(OSError):
                socket.create_connection(address, timeout=0.5)
        finally:
            provider.release()
            parked.close()

    def test_stats_snapshot(self, server_factory):
        _, server, address = server_factory()
        client = _Client(address)
        try:
            client.request({"op": "embed", "names": ["a"],
                            "api_key": "k-test"})
        finally:
            client.close()
        stats = server.stats()
        assert stats["requests"] >= 1
        assert stats["inflight"] == 0
        assert stats["tenants"][0]["admitted"] == 1


# ----------------------------------------------------------------------
# knn/retrieve over the socket: quotas, deadlines, structured errors
# ----------------------------------------------------------------------
def _indexed_stack(tmp_path, server_factory, **kwargs):
    """Server whose service answers knn from a pre-built index.

    The SAME provider instance feeds both the index build and the
    service: RandomProvider draws vectors sequentially from its seeded
    rng, so a second instance would assign different vectors to the
    same names.
    """
    from repro.index import VectorIndex

    provider = RandomProvider(dim=8, seed=0)
    catalog = [f"alarm-{i}" for i in range(32)]
    vectors = provider.encode_names(catalog)
    index = VectorIndex(tmp_path / "knn-index", fingerprint="unversioned")
    index.build({name: vectors[i] for i, name in enumerate(catalog)})
    return server_factory(provider=provider, index=index, **kwargs)


class TestKnnOp:
    def test_knn_roundtrip_and_retrieve_alias(self, tmp_path,
                                              server_factory):
        service, _, address = _indexed_stack(tmp_path, server_factory)
        client = _Client(address)
        try:
            response = client.request(
                {"op": "knn", "names": ["alarm-3"], "k": 3,
                 "api_key": "k-test"})
            assert response["ok"] and response["op"] == "knn"
            [hits] = response["neighbours"]
            assert len(hits) == 3
            assert hits[0]["name"] == "alarm-3"    # self-hit first
            assert hits[0]["score"] == pytest.approx(1.0, abs=1e-4)
            alias = client.request(
                {"op": "retrieve", "names": ["alarm-3"], "k": 3,
                 "api_key": "k-test"})
            assert alias["ok"] and alias["op"] == "retrieve"
            assert alias["neighbours"] == response["neighbours"]
        finally:
            client.close()
        assert service.stats()["index"]["counters"]["queries"] >= 2

    @pytest.mark.parametrize("payload", [
        {"op": "knn", "api_key": "k-test"},                  # no names
        {"op": "knn", "names": [], "api_key": "k-test"},     # empty
        {"op": "knn", "names": [7], "api_key": "k-test"},    # non-string
        {"op": "knn", "names": ["a"], "k": 0, "api_key": "k-test"},
        {"op": "knn", "names": ["a"], "nprobe": 0, "api_key": "k-test"},
    ])
    def test_bad_knn_requests_get_bad_request_code(self, tmp_path,
                                                   server_factory,
                                                   payload):
        _, _, address = _indexed_stack(tmp_path, server_factory)
        client = _Client(address)
        try:
            response = client.request(payload)
            assert response["ok"] is False
            assert response["code"] == "bad_request"
        finally:
            client.close()

    def test_knn_without_index_is_a_clean_error(self, server_factory):
        _, _, address = server_factory()    # no index configured
        client = _Client(address)
        try:
            response = client.request(
                {"op": "knn", "names": ["a"], "api_key": "k-test"})
            assert response["ok"] is False
            assert "no vector index" in response["error"]
        finally:
            client.close()

    def test_knn_deadline_rejection_is_structured(self, tmp_path,
                                                  server_factory):
        _, _, address = _indexed_stack(tmp_path, server_factory)
        client = _Client(address)
        try:
            response = client.request(
                {"op": "knn", "names": ["alarm-1"], "deadline_ms": 1,
                 "api_key": "k-test", "id": "dl-1"})
            assert response["ok"] is False
            assert response["code"] == "deadline"
            assert response["id"] == "dl-1"
        finally:
            client.close()

    def test_knn_tenant_rate_quota_sheds_with_retry_after(self, tmp_path,
                                                          server_factory):
        tenants = TenantRegistry([TenantSpec(
            name="t", api_key="k", rate_per_s=1.0, burst=1)])
        _, _, address = _indexed_stack(tmp_path, server_factory,
                                       tenants=tenants)
        client = _Client(address)
        try:
            first = client.request({"op": "knn", "names": ["alarm-0"],
                                    "api_key": "k"})
            assert first["ok"]
            shed = client.request({"op": "knn", "names": ["alarm-0"],
                                   "api_key": "k"})
            assert shed["ok"] is False
            assert shed["code"] == "rate_limit"
            assert shed["retry_after_s"] > 0
        finally:
            client.close()


# ----------------------------------------------------------------------
# Graceful SIGTERM drain through the real CLI process
# ----------------------------------------------------------------------
@pytest.mark.timeout(120)
def test_serve_net_cli_sigterm_drains_cleanly(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-net", "--port", "0",
         "--api-key", "k-cli", "--timeout", "2", "--retries", "0",
         "--close-timeout", "2"],
        stderr=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, ["src", os.environ.get("PYTHONPATH")]))},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    try:
        line = process.stderr.readline()
        assert "netserve listening on " in line, line
        host, _, port = line.rsplit(" ", 1)[-1].strip().partition(":")
        client = _Client((host, int(port)), timeout=10.0)
        try:
            assert client.request({"op": "ping"})["ok"]
            assert client.request({"op": "embed", "names": ["cli"],
                                   "api_key": "k-cli"})["ok"]
        finally:
            client.close()
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        assert "netserve draining" in process.stderr.read()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


# ----------------------------------------------------------------------
# Shared dispatch core: the stdin loop stays byte-compatible
# ----------------------------------------------------------------------
class TestSharedDispatchCore:
    def test_serving_server_reexports_protocol(self):
        from repro.serving import server as serving_server

        assert serving_server.handle_request is protocol.handle_request
        assert serving_server.serve_loop is protocol.serve_loop
        assert serving_server.dispatch_line is protocol.dispatch_line

    def test_stdin_envelope_has_no_socket_fields(self):
        with FaultAnalysisService(RandomProvider(dim=4, seed=0),
                                  config=_tight_config()) as service:
            response = protocol.dispatch_line(service, "not json")
            assert response["ok"] is False
            assert set(response) == {"ok", "error"}, \
                "stdin envelope must stay byte-compatible"

    def test_error_envelope_shapes(self):
        legacy = protocol.error_envelope(ValueError("x"))
        assert set(legacy) == {"ok", "error"}
        rich = protocol.error_envelope(
            "busy", code="overload", request_id=3, retry_after_s=0.125)
        assert rich == {"ok": False, "error": "busy", "code": "overload",
                        "retry_after_s": 0.125, "id": 3}


# ----------------------------------------------------------------------
# CLI flag validation
# ----------------------------------------------------------------------
class TestServeFlagValidation:
    @pytest.mark.parametrize("flags", [
        ["serve", "--backoff", "0"],
        ["serve", "--backoff", "-1"],
        ["serve", "--flush-timeout", "-0.5"],
        ["serve", "--close-timeout", "0"],
        ["serve", "--timeout", "nope"],
        ["serve-net", "--backoff", "0"],
        ["serve-net", "--close-timeout", "0"],
        ["serve-net", "--retry-after", "0"],
        ["serve-net", "--default-deadline", "-2"],
        ["serve-net", "--max-inflight", "0"],
        ["loadgen", "--port", "1", "--duration", "0"],
        ["loadgen", "--port", "0"],
    ])
    def test_invalid_serve_family_flags_rejected(self, flags):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(flags)
        assert excinfo.value.code == 2

    def test_serve_parsers_share_service_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("serve", "serve-net"):
            args = parser.parse_args([command, "--backoff", "0.5",
                                      "--flush-timeout", "1.5"])
            assert args.backoff == 0.5
            assert args.flush_timeout == 1.5
