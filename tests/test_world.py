"""Tests for the synthetic telecom world (ontology, causality, topology, episodes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.world import (
    NE_TYPES,
    TeleOntology,
    TelecomWorld,
    generate_topology,
)


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=42)


class TestOntology:
    def test_catalog_sizes(self):
        rng = np.random.default_rng(0)
        onto = TeleOntology.generate(rng, alarms_per_theme=4, kpis_per_theme=3)
        from repro.world.ontology import THEMES
        assert len(onto.alarms) == 4 * len(THEMES)
        assert len(onto.kpis) == 3 * len(THEMES)

    def test_uids_unique(self, world):
        uids = [e.uid for e in world.ontology.events]
        assert len(uids) == len(set(uids))

    def test_alarm_interface_belongs_to_ne(self, world):
        for alarm in world.ontology.alarms:
            assert alarm.interface in NE_TYPES[alarm.ne_type]

    def test_kpi_normal_range_valid(self, world):
        for kpi in world.ontology.kpis:
            assert kpi.normal_low < kpi.normal_high
            assert kpi.anomaly_direction in ("up", "down")

    def test_most_themes_share_characteristic_words(self, world):
        """Theme events should tend to overlap lexically — part of the
        pre-training signal (the rest comes from causal co-occurrence in the
        generated documents)."""
        from collections import Counter
        stop = {"the", "is", "of", "on", "a", "in"}
        themes = {}
        for event in world.ontology.events:
            themes.setdefault(event.theme, []).append(
                set(event.name.lower().split()))
        sharing = 0
        for word_sets in themes.values():
            all_words = Counter(w for s in word_sets for w in s)
            top = {w for w, c in all_words.items()
                   if c >= len(word_sets) // 2} - stop
            if top:
                sharing += 1
        assert sharing >= len(themes) * 0.6

    def test_event_by_uid(self, world):
        first = world.ontology.alarms[0]
        assert world.ontology.event_by_uid(first.uid) is first
        with pytest.raises(KeyError):
            world.ontology.event_by_uid("ALM-99999")

    def test_deterministic_generation(self):
        a = TeleOntology.generate(np.random.default_rng(5))
        b = TeleOntology.generate(np.random.default_rng(5))
        assert [x.name for x in a.events] == [x.name for x in b.events]


class TestCausalGraph:
    def test_acyclic(self, world):
        assert world.causal_graph.is_acyclic()

    def test_probabilities_in_range(self, world):
        for edge in world.causal_graph.edges:
            assert 0.0 < edge.probability <= 1.0
            assert edge.delay > 0

    def test_no_duplicate_edges(self, world):
        pairs = [(e.source, e.target) for e in world.causal_graph.edges]
        assert len(pairs) == len(set(pairs))

    def test_roots_are_sources_only(self, world):
        graph = world.causal_graph
        targets = {e.target for e in graph.edges}
        for root in graph.roots():
            assert root not in targets

    def test_kpis_never_trigger(self, world):
        kpi_uids = {k.uid for k in world.ontology.kpis}
        for edge in world.causal_graph.edges:
            assert edge.source not in kpi_uids

    def test_successors_lookup(self, world):
        graph = world.causal_graph
        edge = graph.edges[0]
        assert edge in graph.successors(edge.source)

    def test_mostly_intra_theme(self, world):
        events = {e.uid: e for e in world.ontology.events}
        intra = sum(1 for e in world.causal_graph.edges
                    if events[e.source].theme == events[e.target].theme)
        assert intra / world.causal_graph.num_edges > 0.7


class TestTopology:
    def test_connected(self):
        import networkx as nx
        topo = generate_topology(np.random.default_rng(0), num_nodes=15)
        assert nx.is_connected(topo.graph)

    def test_node_count(self):
        topo = generate_topology(np.random.default_rng(1), num_nodes=8)
        assert topo.num_nodes == 8

    def test_node_attributes(self):
        topo = generate_topology(np.random.default_rng(2), num_nodes=6)
        for node in topo.nodes:
            assert topo.graph.nodes[node]["ne_type"] in NE_TYPES
            assert "vendor" in topo.graph.nodes[node]
            assert "location" in topo.graph.nodes[node]

    def test_adjacency_matrix_symmetric(self):
        topo = generate_topology(np.random.default_rng(3), num_nodes=10)
        adj = topo.adjacency_matrix()
        assert np.array_equal(adj, adj.T)
        assert adj.sum() == 2 * topo.num_edges

    def test_too_few_nodes_raises(self):
        with pytest.raises(ValueError):
            generate_topology(np.random.default_rng(0), num_nodes=1)

    def test_nodes_of_type(self):
        topo = generate_topology(np.random.default_rng(4), num_nodes=20)
        for ne_type in {topo.ne_type(n) for n in topo.nodes}:
            for node in topo.nodes_of_type(ne_type):
                assert topo.ne_type(node) == ne_type


class TestEpisodes:
    def test_root_is_first_record(self, world):
        episode = world.simulator().simulate(0)
        alarms = episode.alarm_records
        assert alarms[0].event_uid == episode.root_uid

    def test_fired_edges_are_ground_truth_edges(self, world):
        sim = world.simulator()
        for i in range(5):
            episode = sim.simulate(i)
            for pair in episode.fired_edges:
                assert world.causal_graph.has_edge(*pair)

    def test_chain_starts_at_root(self, world):
        episode = world.simulator().simulate(0)
        assert episode.chain[0] == episode.root_uid

    def test_timestamps_sorted(self, world):
        episode = world.simulator().simulate(0)
        times = [r.timestamp for r in episode.records]
        assert times == sorted(times)

    def test_kpi_records_have_values(self, world):
        episode = world.simulator().simulate(0, background_kpi_count=10)
        for record in episode.kpi_records:
            assert record.value is not None and record.value >= 0

    def test_anomalous_kpi_outside_normal_range(self, world):
        sim = world.simulator()
        events = {e.uid: e for e in world.ontology.events}
        found_anomaly = False
        for i in range(10):
            episode = sim.simulate(i, background_kpi_count=0)
            for record in episode.kpi_records:
                kpi = events[record.event_uid]
                outside = (record.value < kpi.normal_low or
                           record.value > kpi.normal_high)
                assert outside  # with background 0, every KPI record is anomalous
                found_anomaly = True
        assert found_anomaly

    def test_explicit_root(self, world):
        roots = [u for u in world.causal_graph.roots()
                 if u.startswith("ALM")]
        episode = world.simulator().simulate(0, root_uid=roots[0])
        assert episode.root_uid == roots[0]

    def test_non_alarm_root_raises(self, world):
        kpi_uid = world.ontology.kpis[0].uid
        with pytest.raises(ValueError):
            world.simulator().simulate(0, root_uid=kpi_uid)

    def test_simulate_many_staggers_time(self, world):
        episodes = world.simulator().simulate_many(3)
        starts = [min(r.timestamp for r in e.records) for e in episodes]
        assert starts[0] < starts[1] < starts[2]

    def test_occurrence_time(self, world):
        episode = world.simulator().simulate(0)
        t = episode.occurrence_time(episode.root_uid)
        assert t == min(r.timestamp for r in episode.records
                        if r.event_uid == episode.root_uid)
        assert episode.occurrence_time("ALM-00000") is None


class TestWorld:
    def test_deterministic(self):
        a = TelecomWorld.generate(seed=9)
        b = TelecomWorld.generate(seed=9)
        assert a.causal_graph.edge_set() == b.causal_graph.edge_set()
        assert a.topology.nodes == b.topology.nodes

    def test_different_seeds_differ(self):
        a = TelecomWorld.generate(seed=1)
        b = TelecomWorld.generate(seed=2)
        assert a.causal_graph.edge_set() != b.causal_graph.edge_set()

    def test_simulate_episodes_wrapper(self, world):
        episodes = world.simulate_episodes(2)
        assert len(episodes) == 2


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_causal_graph_always_acyclic(seed):
    world = TelecomWorld.generate(seed=seed, alarms_per_theme=3,
                                  kpis_per_theme=2, topology_nodes=6)
    assert world.causal_graph.is_acyclic()


class TestLogIo:
    def test_roundtrip_preserves_everything(self, world, tmp_path):
        from repro.world import export_episodes, import_episodes
        episodes = world.simulate_episodes(3)
        path = export_episodes(episodes, tmp_path / "episodes.jsonl")
        restored = import_episodes(path)
        assert len(restored) == len(episodes)
        for a, b in zip(episodes, restored):
            assert a.root_uid == b.root_uid
            assert a.chain == b.chain
            assert a.fired_edges == b.fired_edges
            assert len(a.records) == len(b.records)
            assert a.records[0] == b.records[0]

    def test_bad_format_rejected(self, tmp_path):
        from repro.world import import_episodes
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            import_episodes(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.world import import_episodes
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            import_episodes(path)

    def test_restored_episodes_usable_by_tasks(self, world, tmp_path):
        from repro.tasks.rca import build_rca_dataset
        from repro.world import export_episodes, import_episodes
        episodes = world.simulate_episodes(5)
        path = export_episodes(episodes, tmp_path / "episodes.jsonl")
        restored = import_episodes(path)
        a = build_rca_dataset(world, episodes)
        b = build_rca_dataset(world, restored)
        assert len(a.states) == len(b.states)
        for sa, sb in zip(a.states, b.states):
            assert np.array_equal(sa.features, sb.features)
