"""Tests for the caching provider and the model-summary helper."""

import numpy as np

from repro import nn
from repro.service import CachedProvider, RandomProvider, WordEmbeddingProvider


class CountingProvider(WordEmbeddingProvider):
    """Test double that counts encode calls."""

    def __init__(self):
        super().__init__(dim=4, seed=0)
        self.calls = 0
        self.names_encoded = 0

    def encode_names(self, names):
        self.calls += 1
        self.names_encoded += len(names)
        return super().encode_names(names)


class TestCachedProvider:
    def test_results_match_inner(self):
        inner = RandomProvider(dim=8, seed=0)
        cached = CachedProvider(RandomProvider(dim=8, seed=0))
        names = ["a", "b", "c"]
        assert np.allclose(inner.encode_names(names),
                           cached.encode_names(names))

    def test_inner_called_once_per_distinct_name(self):
        inner = CountingProvider()
        cached = CachedProvider(inner)
        cached.encode_names(["x", "y"])
        cached.encode_names(["x", "y", "x"])
        assert inner.names_encoded == 2
        assert cached.hits == 3
        assert cached.misses == 2

    def test_duplicates_within_one_call(self):
        inner = CountingProvider()
        cached = CachedProvider(inner)
        out = cached.encode_names(["x", "x", "x"])
        assert inner.names_encoded == 1
        assert out.shape == (3, 4)
        assert np.allclose(out[0], out[1])

    def test_clear(self):
        inner = CountingProvider()
        cached = CachedProvider(inner)
        cached.encode_names(["x"])
        cached.clear()
        assert cached.cache_size == 0
        cached.encode_names(["x"])
        assert inner.names_encoded == 2

    def test_label_and_dim_forwarded(self):
        cached = CachedProvider(RandomProvider(dim=8, seed=0))
        assert cached.label == "Random"
        assert cached.dim == 8


class TestSummary:
    def test_breakdown_sums_to_total(self):
        rng = np.random.default_rng(0)
        model = nn.TransformerEncoderLayer(8, 2, 16, rng)
        breakdown = nn.parameter_breakdown(model)
        total = breakdown.pop("(total)")
        assert sum(breakdown.values()) == total
        assert total == model.num_parameters()

    def test_direct_parameters_reported(self):
        class WithDirect(nn.Module):
            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.zeros((3, 3)))
                self.child = nn.LayerNorm(3)

        breakdown = nn.parameter_breakdown(WithDirect())
        assert breakdown["(direct)"] == 9
        assert breakdown["child"] == 6

    def test_summarize_renders(self):
        rng = np.random.default_rng(0)
        text = nn.summarize(nn.Linear(4, 2, rng), title="demo")
        assert text.startswith("demo")
        assert "(total)" in text
        assert "10" in text  # 4*2 + 2
