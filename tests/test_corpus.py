"""Tests for document generation, Tele-Corpus assembly, and causal extraction."""

import numpy as np
import pytest

from repro.corpus import (
    CAUSAL_KEYWORDS,
    build_tele_corpus,
    extract_causal_sentences,
    generate_generic_corpus,
    generate_product_documents,
    strip_identifiers,
)
from repro.corpus.telecorpus import splice_adjacent
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=3)


@pytest.fixture(scope="module")
def documents(world):
    return generate_product_documents(world, seed=3)


class TestDocuments:
    def test_one_document_per_ne_type(self, world, documents):
        ne_types = {e.ne_type for e in world.ontology.events}
        assert len(documents) == len(ne_types)

    def test_sections_present(self, documents):
        for doc in documents:
            assert set(doc.sections) == {"event_descriptions", "kpi_reference",
                                         "fault_cases", "handling_procedures"}

    def test_fault_cases_carry_causal_keywords(self, documents):
        from repro.corpus.causal import contains_causal_keyword
        cases = [s for d in documents for s in d.sections["fault_cases"]]
        assert cases
        assert all(contains_causal_keyword(c) for c in cases)

    def test_fault_cases_mention_event_names(self, world, documents):
        """Causal edges must be verbalised with event surfaces."""
        surfaces = [e.name for e in world.ontology.events]
        cases = " ".join(s for d in documents for s in d.sections["fault_cases"])
        mentioned = sum(1 for s in surfaces if s in cases)
        assert mentioned > len(surfaces) * 0.5

    def test_deterministic(self, world):
        a = generate_product_documents(world, seed=1)
        b = generate_product_documents(world, seed=1)
        assert [d.sentences() for d in a] == [d.sentences() for d in b]


class TestTeleCorpus:
    def test_contains_entity_surfaces(self, world):
        corpus = build_tele_corpus(world, seed=0)
        assert world.ontology.alarms[0].name in corpus.sentences

    def test_augmentation_adds_sentences(self, world, documents):
        plain = build_tele_corpus(world, seed=0, augmentation_factor=0.0,
                                  documents=documents)
        augmented = build_tele_corpus(world, seed=0, augmentation_factor=1.0,
                                      documents=documents)
        assert len(augmented) > len(plain)

    def test_sample_without_replacement(self, world):
        corpus = build_tele_corpus(world, seed=0)
        sample = corpus.sample(10, np.random.default_rng(0))
        assert len(sample) == 10

    def test_sample_more_than_corpus(self, world, documents):
        corpus = build_tele_corpus(world, seed=0, documents=documents)
        sample = corpus.sample(len(corpus) + 50, np.random.default_rng(0))
        assert len(sample) == len(corpus) + 50

    def test_splice_spans_are_adjacent(self):
        sentences = [f"s{i}" for i in range(10)]
        spliced = splice_adjacent(sentences, np.random.default_rng(0),
                                  num_splices=20, max_span=3)
        for joined in spliced:
            parts = joined.split()
            indices = [int(p[1:]) for p in parts]
            assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_splice_empty_input(self):
        assert splice_adjacent(["one"], np.random.default_rng(0), 5) == []


class TestCausalExtraction:
    def test_strip_identifiers(self):
        raw = "[KPI] 1929480378 The number of requests increases abnormally"
        assert strip_identifiers(raw) == \
            "The number of requests increases abnormally"

    def test_strip_alm_identifiers(self):
        raw = "[Alm] ALM-100072 The NF destination service is unreachable"
        assert strip_identifiers(raw) == \
            "The NF destination service is unreachable"

    def test_extract_requires_keyword(self):
        sentences = ["The link failure leads to session drops in the core",
                     "The weather is nice today and everything is fine"]
        out = extract_causal_sentences(sentences, min_length=3)
        assert out == ["The link failure leads to session drops in the core"]

    def test_extract_enforces_min_length(self):
        out = extract_causal_sentences(["A causes B"], min_length=6)
        assert out == []

    def test_extract_deduplicates(self):
        sentence = "The alarm triggers a KPI drop in the region"
        out = extract_causal_sentences([sentence, sentence], min_length=3)
        assert len(out) == 1

    def test_keyword_matching_is_word_bounded(self):
        # "because of" inside another word must not match.
        out = extract_causal_sentences(
            ["The xtriggerx token is not a causal keyword here at all"],
            min_length=3)
        assert out == []

    def test_real_corpus_yields_causal_sentences(self, world, documents):
        corpus = build_tele_corpus(world, seed=0, documents=documents)
        causal = extract_causal_sentences(corpus.sentences)
        assert len(causal) > 50
        # IDs must be gone.
        assert not any("ALM-1" in s and "[Alm]" in s for s in causal)

    def test_keywords_cover_connectives(self):
        from repro.corpus.documents import CAUSAL_CONNECTIVES
        for connective in CAUSAL_CONNECTIVES:
            assert any(connective.startswith(k.split()[0]) or k in connective
                       for k in CAUSAL_KEYWORDS), connective


class TestGenericCorpus:
    def test_size(self):
        corpus = generate_generic_corpus(100, seed=0)
        assert len(corpus) == 100

    def test_deterministic(self):
        assert generate_generic_corpus(50, seed=1) == \
            generate_generic_corpus(50, seed=1)

    def test_no_telecom_jargon(self):
        corpus = " ".join(generate_generic_corpus(200, seed=0))
        for jargon in ("KPI", "alarm", "SMF", "PDU", "handover", "paging"):
            assert jargon not in corpus
