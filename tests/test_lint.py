"""Tests for :mod:`repro.lint` — rules, suppressions, baseline, CLI.

Fixture snippets are analysed with injected repo-relative paths
(``analyze_source(source, rel)``), so a fixture can be placed inside or
outside a rule's scope without touching the real tree.  The meta-test at
the bottom holds the live ``src/repro`` tree to the committed baseline.
"""

import io
import json
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Baseline,
    LintConfig,
    analyze_paths,
    analyze_source,
    analyze_sources,
    lint_main,
    load_baseline,
    rule,
    save_baseline,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.core import FRAMEWORK_CODE
from repro.lint.project import SummaryCache, cache_key

ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = ROOT / "tools" / "lint_baseline.json"

SERVING_REL = "src/repro/serving/fixture.py"
MODELS_REL = "src/repro/models/fixture.py"
OTHER_REL = "src/repro/analysis/fixture.py"


def codes(findings):
    return [f.rule for f in findings]


def lint(source, rel=OTHER_REL, select=None):
    return analyze_source(source, rel, select=select)


def lint_tree(sources, select=None):
    """Lint a dict of rel -> source as one program (project rules see
    the whole call graph)."""
    return analyze_sources(sources, select=select)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_eleven_rules_registered(self):
        assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                "RL007", "RL008", "RL009", "RL010", "RL011"} <= set(RULES)

    def test_rules_carry_metadata(self):
        for meta in RULES.values():
            assert meta.title
            assert meta.rationale, f"{meta.code} has no rationale"
            assert meta.severity in ("error", "warning")
            assert meta.scope in ("module", "project")

    def test_flow_rules_are_project_scoped(self):
        for code in ("RL008", "RL009", "RL010", "RL011"):
            assert RULES[code].scope == "project"

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("RL001", "again")(lambda ctx: [])

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            rule("RL999", "x", severity="fatal")

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="RL998"):
            lint("x = 1", select=["RL998"])


# ----------------------------------------------------------------------
# RL001 — blocking call in a lock
# ----------------------------------------------------------------------
RL001_BAD = """
def f(self):
    with self._lock:
        return self.provider.encode(["a"])
"""

RL001_COND_WAIT_OK = """
def f(self):
    with self._cond:
        self._cond.wait(timeout=1.0)
"""

RL001_DICT_GET_OK = """
def f(self):
    with self._lock:
        return self._pending.get("name")
"""

RL001_STR_JOIN_OK = """
def f(self):
    with self._lock:
        return ", ".join(self.names)
"""

RL001_STR_ENCODE_OK = """
import json
def f(self):
    with self._lock:
        self.buf += json.dumps({}).encode("utf-8")
        self.tag = "x".encode("utf-8")
"""

RL001_NESTED_DEF_OK = """
def f(self):
    with self._lock:
        def later():
            return self.queue.get()
        return later
"""

RL001_THREAD_JOIN_BAD = """
def f(self):
    with self._lock:
        self.worker_thread.join()
"""


class TestRL001:
    def test_encode_in_lock_flagged(self):
        assert codes(lint(RL001_BAD, select=["RL001"])) == ["RL001"]

    def test_thread_join_in_lock_flagged(self):
        assert codes(lint(RL001_THREAD_JOIN_BAD,
                          select=["RL001"])) == ["RL001"]

    @pytest.mark.parametrize("source", [
        RL001_COND_WAIT_OK, RL001_DICT_GET_OK, RL001_STR_JOIN_OK,
        RL001_STR_ENCODE_OK, RL001_NESTED_DEF_OK,
    ], ids=["cond-wait", "dict-get", "str-join", "str-encode",
            "nested-def"])
    def test_exemptions(self, source):
        assert lint(source, select=["RL001"]) == []

    def test_suppression(self):
        suppressed = RL001_BAD.replace(
            "return self.provider.encode([\"a\"])",
            "return self.provider.encode([\"a\"])  "
            "# repro-lint: allow[RL001] bounded by the flush watchdog")
        assert lint(suppressed, select=["RL001"]) == []


# ----------------------------------------------------------------------
# RL002 — unbounded waits in serving/training scope
# ----------------------------------------------------------------------
RL002_BAD = """
def f(self):
    self.event.wait()
    item = self.queue.get()
"""


class TestRL002:
    def test_flagged_in_scope(self):
        assert codes(lint(RL002_BAD, rel=SERVING_REL,
                          select=["RL002"])) == ["RL002", "RL002"]

    def test_out_of_scope_ignored(self):
        assert lint(RL002_BAD, rel=OTHER_REL, select=["RL002"]) == []

    def test_timeout_argument_accepted(self):
        ok = "def f(self):\n    self.event.wait(timeout=2.0)\n"
        assert lint(ok, rel=SERVING_REL, select=["RL002"]) == []

    def test_suppression(self):
        suppressed = RL002_BAD.replace(
            "self.event.wait()",
            "self.event.wait()  # repro-lint: allow[RL002] event is "
            "always set before this point")
        assert codes(lint(suppressed, rel=SERVING_REL,
                          select=["RL002"])) == ["RL002"]


# ----------------------------------------------------------------------
# RL003 — non-daemon threads
# ----------------------------------------------------------------------
RL003_BAD = """
import threading
def f():
    return threading.Thread(target=f)
"""

RL003_FALSE_BAD = """
import threading
def f():
    return threading.Thread(target=f, daemon=False)
"""

RL003_OK = """
import threading
def f():
    return threading.Thread(target=f, daemon=True)
"""

RL003_ALIASED_BAD = """
from threading import Thread
def f():
    return Thread(target=f)
"""


class TestRL003:
    def test_missing_daemon_flagged(self):
        assert codes(lint(RL003_BAD, select=["RL003"])) == ["RL003"]

    def test_daemon_false_flagged(self):
        assert codes(lint(RL003_FALSE_BAD, select=["RL003"])) == ["RL003"]

    def test_aliased_import_flagged(self):
        assert codes(lint(RL003_ALIASED_BAD, select=["RL003"])) == ["RL003"]

    def test_daemon_true_accepted(self):
        assert lint(RL003_OK, select=["RL003"]) == []

    def test_suppression(self):
        suppressed = RL003_BAD.replace(
            "return threading.Thread(target=f)",
            "# repro-lint: allow[RL003] joined explicitly in close()\n"
            "    return threading.Thread(target=f)")
        assert lint(suppressed, select=["RL003"]) == []


# ----------------------------------------------------------------------
# RL004 — non-atomic writes in checkpoint/store scope
# ----------------------------------------------------------------------
RL004_BAD = """
import json
import numpy as np
from pathlib import Path

def save(path, meta, arrays):
    Path(path).write_text(json.dumps(meta))
    with open(path, "w") as handle:
        handle.write("x")
    np.savez(path, **arrays)
"""

RL004_OK = """
import io
import numpy as np
from repro.ioutil import atomic_write_bytes

def save(path, arrays, record):
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())
    with open(path, "a", encoding="utf-8") as handle:  # append-only log
        handle.write(record)
"""

RL004_IMPL_OK = """
import os
def atomic_write_text(path, text):
    with open(path, "w") as handle:
        handle.write(text)
"""


class TestRL004:
    def test_truncating_writes_flagged(self):
        found = codes(lint(RL004_BAD, rel=MODELS_REL, select=["RL004"]))
        assert found == ["RL004", "RL004", "RL004"]

    def test_out_of_scope_ignored(self):
        assert lint(RL004_BAD, rel=OTHER_REL, select=["RL004"]) == []

    def test_atomic_pattern_accepted(self):
        assert lint(RL004_OK, rel=MODELS_REL, select=["RL004"]) == []

    def test_atomic_impl_function_exempt(self):
        assert lint(RL004_IMPL_OK, rel=MODELS_REL, select=["RL004"]) == []

    def test_suppression(self):
        suppressed = RL004_BAD.replace(
            "Path(path).write_text(json.dumps(meta))",
            "Path(path).write_text(json.dumps(meta))  "
            "# repro-lint: allow[RL004] scratch file, never reloaded")
        assert codes(lint(suppressed, rel=MODELS_REL,
                          select=["RL004"])) == ["RL004", "RL004"]


# ----------------------------------------------------------------------
# RL005 — global RNG
# ----------------------------------------------------------------------
RL005_BAD = """
import random
import numpy as np

def f():
    random.shuffle([1, 2])
    np.random.seed(0)
    return np.random.normal(size=3)
"""

RL005_OK = """
import numpy as np
import random

def f(seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(size=3), local.random()
"""

RL005_FROM_IMPORT_BAD = """
from numpy.random import rand
from random import shuffle
"""


class TestRL005:
    def test_global_calls_flagged(self):
        assert codes(lint(RL005_BAD, select=["RL005"])) == \
            ["RL005", "RL005", "RL005"]

    def test_seeded_generators_accepted(self):
        assert lint(RL005_OK, select=["RL005"]) == []

    def test_from_imports_flagged(self):
        assert codes(lint(RL005_FROM_IMPORT_BAD,
                          select=["RL005"])) == ["RL005", "RL005"]

    def test_suppression(self):
        suppressed = RL005_BAD.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro-lint: allow[RL005] test-only "
            "harness seeding")
        assert codes(lint(suppressed, select=["RL005"])) == \
            ["RL005", "RL005"]


# ----------------------------------------------------------------------
# RL006 — silent broad excepts
# ----------------------------------------------------------------------
RL006_BARE = """
def f():
    try:
        g()
    except:
        pass
"""

RL006_SILENT = """
def f():
    try:
        g()
    except Exception:
        pass
"""

RL006_LOGGED_OK = """
def f(self):
    try:
        g()
    except Exception as error:
        self.metrics.emit("error", error=repr(error))
"""

RL006_RERAISE_OK = """
def f():
    try:
        g()
    except Exception:
        raise
"""

RL006_NAME_USED_OK = """
def f(self):
    try:
        g()
    except BaseException as caught:
        self.error = caught
"""

RL006_NARROW_OK = """
def f():
    try:
        g()
    except (OSError, ValueError):
        pass
"""


class TestRL006:
    def test_bare_except_flagged(self):
        assert codes(lint(RL006_BARE, select=["RL006"])) == ["RL006"]

    def test_silent_broad_except_flagged(self):
        assert codes(lint(RL006_SILENT, select=["RL006"])) == ["RL006"]

    @pytest.mark.parametrize("source", [
        RL006_LOGGED_OK, RL006_RERAISE_OK, RL006_NAME_USED_OK,
        RL006_NARROW_OK,
    ], ids=["logged", "reraise", "name-used", "narrow"])
    def test_exemptions(self, source):
        assert lint(source, select=["RL006"]) == []

    def test_suppression(self):
        suppressed = RL006_SILENT.replace(
            "except Exception:",
            "except Exception:  # repro-lint: allow[RL006] best-effort "
            "cleanup, failure is fine")
        assert lint(suppressed, select=["RL006"]) == []


# ----------------------------------------------------------------------
# RL007 — metric-name / prompt-token drift
# ----------------------------------------------------------------------
RL007_METRIC_BAD = """
def f(metrics):
    metrics.counter("serving.requests").inc()
    metrics.counter(f"serving.latency.{0}").inc()
"""

RL007_TOKEN_BAD = """
def f(name):
    return f"[ENT] {name}"
"""

RL007_SEPARATOR_BAD = """
def f(parts):
    return "|".join(parts)
"""

RL007_BENCH_BAD = """
def f(record):
    record("bench.train_step", {"step_ms": 1.0})
"""

RL007_DOCSTRING_OK = '''
def f():
    """Wraps entities in the [ENT] format, e.g. serving.requests."""
    return None
'''


class TestRL007:
    def test_metric_literal_flagged(self):
        assert codes(lint(RL007_METRIC_BAD, rel=SERVING_REL,
                          select=["RL007"])) == ["RL007", "RL007"]

    def test_metric_names_module_exempt(self):
        assert lint(RL007_METRIC_BAD,
                    rel="src/repro/serving/metric_names.py",
                    select=["RL007"]) == []

    def test_prompt_token_flagged(self):
        assert codes(lint(RL007_TOKEN_BAD, rel=MODELS_REL,
                          select=["RL007"])) == ["RL007"]

    def test_templates_module_exempt(self):
        assert lint(RL007_TOKEN_BAD,
                    rel="src/repro/prompts/templates.py",
                    select=["RL007"]) == []

    def test_bench_id_flagged(self):
        found = lint(RL007_BENCH_BAD, rel=OTHER_REL, select=["RL007"])
        assert codes(found) == ["RL007"]
        assert "repro.bench.registry" in found[0].message

    def test_bench_registry_module_exempt(self):
        assert lint(RL007_BENCH_BAD,
                    rel="src/repro/bench/registry.py",
                    select=["RL007"]) == []

    def test_bench_id_not_misreported_as_metric(self):
        # A bench id in the metric-names module is still a bench finding,
        # not silently accepted by the serving-metric exemption.
        found = lint(RL007_BENCH_BAD,
                     rel="src/repro/serving/metric_names.py",
                     select=["RL007"])
        assert codes(found) == ["RL007"]
        assert "benchmark id" in found[0].message

    def test_separator_flagged_in_prompt_scope(self):
        assert codes(lint(RL007_SEPARATOR_BAD,
                          rel="src/repro/corpus/fixture.py",
                          select=["RL007"])) == ["RL007"]

    def test_separator_ignored_elsewhere(self):
        assert lint(RL007_SEPARATOR_BAD, rel=OTHER_REL,
                    select=["RL007"]) == []

    def test_index_metric_literal_flagged(self):
        source = """
def f(metrics):
    metrics.counter("index.queries").inc()
"""
        assert codes(lint(source, rel=OTHER_REL,
                          select=["RL007"])) == ["RL007"]

    def test_filename_shaped_strings_exempt(self):
        # "index.json" / "train.log" are file names, not metric ids.
        source = """
def f(directory):
    return [directory / "index.json", directory / "train.log"]
"""
        assert lint(source, rel=OTHER_REL, select=["RL007"]) == []

    def test_docstring_mentions_exempt(self):
        assert lint(RL007_DOCSTRING_OK, rel=MODELS_REL,
                    select=["RL007"]) == []

    def test_suppression(self):
        suppressed = RL007_TOKEN_BAD.replace(
            'return f"[ENT] {name}"',
            'return f"[ENT] {name}"  # repro-lint: allow[RL007] '
            'golden-output fixture')
        assert lint(suppressed, rel=MODELS_REL, select=["RL007"]) == []


# ----------------------------------------------------------------------
# RL008 — lock-order inversion
# ----------------------------------------------------------------------
RL008_INVERSION_BAD = """
import threading

lock_a = threading.Lock()
lock_b = threading.Lock()

def first():
    with lock_a:
        with lock_b:
            pass

def second():
    with lock_b:
        with lock_a:
            pass
"""

RL008_METHOD_BAD = """
import threading

class Store:
    def __init__(self):
        self._index_lock = threading.Lock()
        self._write_lock = threading.Lock()

    def query(self):
        with self._index_lock:
            with self._write_lock:
                pass

    def commit(self):
        with self._write_lock:
            with self._index_lock:
                pass
"""

RL008_TRANSITIVE_BAD = """
import threading

lock_a = threading.Lock()
lock_b = threading.Lock()

def outer_ab():
    with lock_a:
        _take_b()

def _take_b():
    with lock_b:
        pass

def outer_ba():
    with lock_b:
        with lock_a:
            pass
"""

RL008_ORDERED_OK = """
import threading

lock_a = threading.Lock()
lock_b = threading.Lock()

def first():
    with lock_a:
        with lock_b:
            pass

def second():
    with lock_a:
        with lock_b:
            pass
"""

RL008_SINGLE_OK = """
import threading

lock = threading.Lock()

def f():
    with lock:
        pass
"""

RL008_REENTRANT_OK = """
import threading

class Store:
    def __init__(self):
        self._lock = threading.RLock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            pass
"""


class TestRL008:
    def test_module_lock_inversion_flagged(self):
        found = lint(RL008_INVERSION_BAD, select=["RL008"])
        assert codes(found) == ["RL008", "RL008"]
        assert "lock-order inversion" in found[0].message

    def test_instance_lock_inversion_flagged(self):
        assert codes(lint(RL008_METHOD_BAD,
                          select=["RL008"])) == ["RL008", "RL008"]

    def test_inversion_through_callee_flagged(self):
        # No single function nests both orders; the A->B edge exists
        # only through the resolved call graph.
        found = lint(RL008_TRANSITIVE_BAD, select=["RL008"])
        assert "RL008" in codes(found)

    def test_consistent_order_accepted(self):
        assert lint(RL008_ORDERED_OK, select=["RL008"]) == []

    def test_single_lock_accepted(self):
        assert lint(RL008_SINGLE_OK, select=["RL008"]) == []

    def test_reentrant_self_acquisition_accepted(self):
        assert lint(RL008_REENTRANT_OK, select=["RL008"]) == []

    def test_global_scope(self):
        # RL008 applies outside flow_scope too: an inversion is a bug
        # wherever the locks live.
        assert codes(lint(RL008_INVERSION_BAD, rel=OTHER_REL,
                          select=["RL008"])) == ["RL008", "RL008"]


# ----------------------------------------------------------------------
# RL009 — transitive blocking under a lock
# ----------------------------------------------------------------------
RL009_ONE_HOP_BAD = """
class Service:
    def serve(self):
        with self._lock:
            self._refresh()

    def _refresh(self):
        self.ready_event.wait()
"""

RL009_TWO_HOPS_BAD = """
class Service:
    def serve(self):
        with self._lock:
            self._refresh()

    def _refresh(self):
        self._drain()

    def _drain(self):
        return self.queue.get()
"""

# The PR-4 shape: the encode itself moved one frame below the lock, so
# RL001 no longer sees it — only the interprocedural rule does.
RL009_HUNG_ENCODER_REGRESSION = """
class BatchStore:
    def lookup(self, names):
        with self._lock:
            return self._ensure_vectors(names)

    def _ensure_vectors(self, names):
        return self.provider.encode([n for n in names])
"""

RL009_BOUNDED_OK = """
class Service:
    def serve(self):
        with self._lock:
            self._refresh(timeout_s=1.0)

    def _refresh(self, timeout_s=None):
        self.ready_event.wait(timeout_s)
"""

RL009_OUTSIDE_LOCK_OK = """
class Service:
    def serve(self):
        payload = self._refresh()
        with self._lock:
            self.cache = payload

    def _refresh(self):
        return self.queue.get()
"""

RL009_NONBLOCKING_CALLEE_OK = """
class Service:
    def serve(self):
        with self._lock:
            self._bump()

    def _bump(self):
        self.counter += 1
"""


class TestRL009:
    def test_one_hop_chain_flagged(self):
        found = lint(RL009_ONE_HOP_BAD, rel=SERVING_REL,
                     select=["RL009"])
        assert codes(found) == ["RL009"]
        assert "_refresh" in found[0].message

    def test_two_hop_chain_flagged(self):
        assert codes(lint(RL009_TWO_HOPS_BAD, rel=SERVING_REL,
                          select=["RL009"])) == ["RL009"]

    def test_hung_encoder_regression(self):
        # Historical: PR 4 fixed a deadlock where a hung provider.encode
        # ran under the store lock; this is that shape one frame down.
        found = lint(RL009_HUNG_ENCODER_REGRESSION, rel=SERVING_REL,
                     select=["RL009"])
        assert codes(found) == ["RL009"]
        assert "while holding" in found[0].message

    def test_bounded_call_accepted(self):
        assert lint(RL009_BOUNDED_OK, rel=SERVING_REL,
                    select=["RL009"]) == []

    def test_call_outside_lock_accepted(self):
        assert lint(RL009_OUTSIDE_LOCK_OK, rel=SERVING_REL,
                    select=["RL009"]) == []

    def test_nonblocking_callee_accepted(self):
        assert lint(RL009_NONBLOCKING_CALLEE_OK, rel=SERVING_REL,
                    select=["RL009"]) == []

    def test_out_of_flow_scope_ignored(self):
        assert lint(RL009_ONE_HOP_BAD, rel=OTHER_REL,
                    select=["RL009"]) == []

    def test_suppression(self):
        suppressed = RL009_ONE_HOP_BAD.replace(
            "self._refresh()",
            "self._refresh()  # repro-lint: allow[RL009] event set "
            "before serve is reachable")
        assert lint(suppressed, rel=SERVING_REL, select=["RL009"]) == []


# ----------------------------------------------------------------------
# RL010 — dropped deadline
# ----------------------------------------------------------------------
RL010_WAIT_BAD = """
class Worker:
    def flush(self, deadline=None):
        self.done_event.wait()
"""

RL010_CALLEE_BAD = """
class Worker:
    def close(self, timeout_s=None):
        self._drain()

    def _drain(self, timeout_s=None):
        self.queue_empty.wait(timeout_s)
"""

# The netserve shape fixed in this PR: close(timeout_s) joined the
# accept thread with a constant instead of the caller's budget.
RL010_JOIN_REGRESSION = """
class Server:
    def close(self, timeout_s=None):
        self._accept_thread.join()
"""

RL010_FORWARDED_OK = """
class Worker:
    def close(self, timeout_s=None):
        self._drain(timeout_s=timeout_s)

    def _drain(self, timeout_s=None):
        self.queue_empty.wait(timeout_s)
"""

RL010_DERIVED_OK = """
class Worker:
    def flush(self, deadline=None):
        remaining = deadline.remaining()
        self.done_event.wait(remaining)
"""

RL010_GUARDED_OK = """
class Worker:
    def flush(self, deadline=None):
        if deadline is None:
            self.done_event.wait()
        else:
            self.done_event.wait(deadline.remaining())
"""

RL010_NO_DEADLINE_PARAM_OK = """
class Worker:
    def flush(self):
        self.done_event.wait()
"""


class TestRL010:
    def test_unbounded_wait_flagged(self):
        found = lint(RL010_WAIT_BAD, rel=SERVING_REL, select=["RL010"])
        assert codes(found) == ["RL010"]
        assert "deadline" in found[0].message

    def test_dropped_on_callee_flagged(self):
        found = lint(RL010_CALLEE_BAD, rel=SERVING_REL,
                     select=["RL010"])
        assert codes(found) == ["RL010"]
        assert "drops the deadline" in found[0].message

    def test_unforwarded_join_regression(self):
        # Historical: Server.close(timeout_s) joined its accept thread
        # with a fixed grace, stretching the caller's close budget.
        assert codes(lint(RL010_JOIN_REGRESSION, rel=SERVING_REL,
                          select=["RL010"])) == ["RL010"]

    def test_forwarded_deadline_accepted(self):
        assert lint(RL010_FORWARDED_OK, rel=SERVING_REL,
                    select=["RL010"]) == []

    def test_derived_value_accepted(self):
        assert lint(RL010_DERIVED_OK, rel=SERVING_REL,
                    select=["RL010"]) == []

    def test_guarded_branch_accepted(self):
        assert lint(RL010_GUARDED_OK, rel=SERVING_REL,
                    select=["RL010"]) == []

    def test_function_without_deadline_ignored(self):
        assert lint(RL010_NO_DEADLINE_PARAM_OK, rel=SERVING_REL,
                    select=["RL010"]) == []

    def test_out_of_flow_scope_ignored(self):
        assert lint(RL010_WAIT_BAD, rel=OTHER_REL,
                    select=["RL010"]) == []


# ----------------------------------------------------------------------
# RL011 — resource lifecycle
# ----------------------------------------------------------------------
RL011_SOCKET_BAD = """
import socket

def probe(host):
    sock = socket.socket()
    sock.connect((host, 80))
    return None
"""

RL011_CONDITIONAL_BAD = """
def read_header(path):
    handle = open(path, "rb")
    header = handle.read(16)
    if header:
        handle.close()
    return header
"""

# The PR-7 shape: a /dev/shm segment allocated on an error path that
# returns early without unlink() leaks until reboot.
RL011_SHARED_ARRAY_REGRESSION = """
from repro.training.shm import SharedArray

def stage(shape):
    scratch = SharedArray(shape)
    scratch.array.fill(0)
    return None
"""

RL011_WITH_OK = """
import socket

def probe(host):
    with socket.socket() as sock:
        sock.connect((host, 80))
"""

RL011_FINALLY_OK = """
def read_header(path):
    handle = open(path, "rb")
    try:
        return handle.read(16)
    finally:
        handle.close()
"""

RL011_HANDOFF_OK = """
import socket

def make_conn(host):
    sock = socket.socket()
    sock.connect((host, 80))
    return sock
"""

RL011_STORED_OK = """
import socket

class Client:
    def connect(self, host):
        sock = socket.socket()
        self._sock = sock
"""


class TestRL011:
    def test_never_closed_flagged(self):
        found = lint(RL011_SOCKET_BAD, rel=SERVING_REL,
                     select=["RL011"])
        assert codes(found) == ["RL011"]
        assert "never closed" in found[0].message

    def test_conditional_close_flagged(self):
        found = lint(RL011_CONDITIONAL_BAD, rel=SERVING_REL,
                     select=["RL011"])
        assert codes(found) == ["RL011"]
        assert "some paths only" in found[0].message

    def test_shared_array_regression(self):
        # Historical: PR 7 chased leaked /dev/shm segments from crash
        # paths that skipped unlink().
        assert codes(lint(RL011_SHARED_ARRAY_REGRESSION,
                          rel="src/repro/training/fixture.py",
                          select=["RL011"])) == ["RL011"]

    @pytest.mark.parametrize("source", [
        RL011_WITH_OK, RL011_FINALLY_OK, RL011_HANDOFF_OK,
        RL011_STORED_OK,
    ], ids=["with", "finally", "returned", "stored-on-self"])
    def test_lifecycles_accepted(self, source):
        assert lint(source, rel=SERVING_REL, select=["RL011"]) == []

    def test_out_of_flow_scope_ignored(self):
        assert lint(RL011_SOCKET_BAD, rel=OTHER_REL,
                    select=["RL011"]) == []

    def test_suppression(self):
        suppressed = RL011_SOCKET_BAD.replace(
            "sock = socket.socket()",
            "sock = socket.socket()  # repro-lint: allow[RL011] "
            "process-lifetime probe socket")
        assert lint(suppressed, rel=SERVING_REL, select=["RL011"]) == []


# ----------------------------------------------------------------------
# Call-graph resolution edge cases (the RL009 carrier shows an edge
# resolved iff the chain from `serve` to the blocking sink is found).
# ----------------------------------------------------------------------
WORKERS_REL = "src/repro/serving/workers.py"
CALLER_REL = "src/repro/serving/caller.py"

WORKERS_SRC = """
def spin():
    return shared_queue.get()
"""


class TestCallGraphResolution:
    def test_module_import_alias(self):
        caller = """
import repro.serving.workers as w

class S:
    def serve(self):
        with self._lock:
            w.spin()
"""
        found = lint_tree({WORKERS_REL: WORKERS_SRC,
                           CALLER_REL: caller}, select=["RL009"])
        assert codes(found) == ["RL009"]

    def test_from_import_as(self):
        caller = """
from repro.serving.workers import spin as go

class S:
    def serve(self):
        with self._lock:
            go()
"""
        found = lint_tree({WORKERS_REL: WORKERS_SRC,
                           CALLER_REL: caller}, select=["RL009"])
        assert codes(found) == ["RL009"]

    def test_reexport_through_package_init(self):
        sources = {
            "src/repro/serving/pool/__init__.py":
                "from repro.serving.pool.impl import spin\n",
            "src/repro/serving/pool/impl.py": WORKERS_SRC,
            CALLER_REL: """
from repro.serving.pool import spin

class S:
    def serve(self):
        with self._lock:
            spin()
""",
        }
        assert codes(lint_tree(sources, select=["RL009"])) == ["RL009"]

    def test_self_method_through_base_class(self):
        sources = {
            "src/repro/serving/base.py": """
class Base:
    def _refresh(self):
        self.ready_event.wait()
""",
            CALLER_REL: """
from repro.serving.base import Base

class S(Base):
    def serve(self):
        with self._lock:
            self._refresh()
""",
        }
        assert codes(lint_tree(sources, select=["RL009"])) == ["RL009"]

    def test_decorated_function_still_resolves(self):
        caller = """
import functools
from repro.serving.workers import spin

def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)
    return wrapper

class S:
    @traced
    def serve(self):
        with self._lock:
            spin()
"""
        found = lint_tree({WORKERS_REL: WORKERS_SRC,
                           CALLER_REL: caller}, select=["RL009"])
        assert codes(found) == ["RL009"]

    def test_call_cycle_terminates(self):
        # a <-> b recursion must not hang the fixpoint; the chain out
        # of the cycle to the sink is still found.
        sources = {
            WORKERS_REL: """
def ping(n):
    if n:
        return pong(n - 1)
    return shared_queue.get()

def pong(n):
    return ping(n)
""",
            CALLER_REL: """
from repro.serving.workers import ping

class S:
    def serve(self):
        with self._lock:
            ping(3)
""",
        }
        assert codes(lint_tree(sources, select=["RL009"])) == ["RL009"]

    def test_constructed_instance_type_inferred(self):
        sources = {
            WORKERS_REL: """
class Pool:
    def drain(self):
        self.queue.get()
""",
            CALLER_REL: """
from repro.serving.workers import Pool

class S:
    def __init__(self):
        self._pool = Pool()

    def serve(self):
        with self._lock:
            self._pool.drain()
""",
        }
        assert codes(lint_tree(sources, select=["RL009"])) == ["RL009"]


# ----------------------------------------------------------------------
# Summary cache
# ----------------------------------------------------------------------
class TestSummaryCache:
    def make_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        pkg = tmp_path / "src" / "repro" / "analysis"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(RL005_BAD)
        (pkg / "clean.py").write_text("x = 1\n")
        return tmp_path

    def test_warm_run_hits_and_findings_replay(self, tmp_path):
        root = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        key = cache_key(LintConfig(), None)

        cache = SummaryCache(cache_path, key)
        cold = analyze_paths([root / "src"], root=root, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        cache.save()

        cache = SummaryCache(cache_path, key)
        warm = analyze_paths([root / "src"], root=root, cache=cache)
        assert cache.hits == 2 and cache.misses == 0
        assert [f.to_dict() for f in warm] == \
            [f.to_dict() for f in cold]

    def test_edited_file_misses(self, tmp_path):
        root = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        key = cache_key(LintConfig(), None)
        cache = SummaryCache(cache_path, key)
        analyze_paths([root / "src"], root=root, cache=cache)
        cache.save()

        dirty = root / "src" / "repro" / "analysis" / "dirty.py"
        dirty.write_text("x = 2\n")
        cache = SummaryCache(cache_path, key)
        findings = analyze_paths([root / "src"], root=root, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert findings == []

    def test_key_change_invalidates_wholesale(self, tmp_path):
        root = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache = SummaryCache(cache_path, cache_key(LintConfig(), None))
        analyze_paths([root / "src"], root=root, cache=cache)
        cache.save()

        other = SummaryCache(cache_path,
                             cache_key(LintConfig(), ["RL005"]))
        assert other.files == {}

    def test_deleted_file_pruned(self, tmp_path):
        root = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        key = cache_key(LintConfig(), None)
        cache = SummaryCache(cache_path, key)
        analyze_paths([root / "src"], root=root, cache=cache)
        cache.save()

        (root / "src" / "repro" / "analysis" / "clean.py").unlink()
        cache = SummaryCache(cache_path, key)
        analyze_paths([root / "src"], root=root, cache=cache)
        cache.save()
        reloaded = SummaryCache(cache_path, key)
        assert set(reloaded.files) == {"src/repro/analysis/dirty.py"}

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        root = self.make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{corrupt")
        cache = SummaryCache(cache_path, cache_key(LintConfig(), None))
        findings = analyze_paths([root / "src"], root=root, cache=cache)
        assert codes(findings) == ["RL005", "RL005", "RL005"]


# ----------------------------------------------------------------------
# Framework: suppressions, syntax errors, fingerprints
# ----------------------------------------------------------------------
class TestFramework:
    def test_suppression_without_reason_is_finding(self):
        source = "x = 1  # repro-lint: allow[RL005]\n"
        found = lint(source)
        assert codes(found) == [FRAMEWORK_CODE]
        assert "reason" in found[0].message

    def test_malformed_suppression_is_finding(self):
        source = "x = 1  # repro-lint: disable everything\n"
        assert codes(lint(source)) == [FRAMEWORK_CODE]

    def test_syntax_error_is_finding(self):
        assert codes(lint("def broken(:\n")) == [FRAMEWORK_CODE]

    def test_suppression_on_line_above(self):
        source = ("# repro-lint: allow[RL006] placeholder for a fixture\n"
                  "try:\n    g()\nexcept Exception:\n    pass\n")
        # The handler starts on the line after the comment... place it
        # directly above the except instead.
        source = ("try:\n    g()\n"
                  "# repro-lint: allow[RL006] fixture needs the swallow\n"
                  "except Exception:\n    pass\n")
        assert lint(source, select=["RL006", FRAMEWORK_CODE]) == []

    def test_fingerprint_survives_line_drift(self):
        before = lint(RL005_BAD, select=["RL005"])
        after = lint("\n\n# a new comment\n" + RL005_BAD, select=["RL005"])
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]
        assert [f.line for f in before] != [f.line for f in after]

    def test_fingerprint_changes_with_line_edit(self):
        before = lint(RL005_BAD, select=["RL005"])
        edited = lint(RL005_BAD.replace("np.random.seed(0)",
                                        "np.random.seed(42)"),
                      select=["RL005"])
        assert before[1].fingerprint != edited[1].fingerprint

    def test_finding_dict_schema(self):
        finding = lint(RL005_BAD, select=["RL005"])[0]
        payload = finding.to_dict()
        assert set(payload) == {"rule", "severity", "path", "line", "col",
                                "message", "line_text", "qualname",
                                "fingerprint"}

    def test_config_is_injectable(self):
        config = LintConfig(bounded_wait_scope=("src/repro/analysis/",))
        found = analyze_source(RL002_BAD, OTHER_REL, config=config,
                               select=["RL002"])
        assert codes(found) == ["RL002", "RL002"]


# ----------------------------------------------------------------------
# Baseline round-trips
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline.from_findings(findings, tracking="issue #12")
        target = tmp_path / "baseline.json"
        save_baseline(baseline, target)
        loaded = load_baseline(target)
        assert loaded.fingerprints == baseline.fingerprints
        assert all(e.tracking == "issue #12" for e in loaded.entries)

    def test_partition(self):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline.from_findings(findings[:1])
        new, baselined, stale = baseline.partition(findings)
        assert len(new) == 2 and len(baselined) == 1 and stale == []

    def test_stale_entries_reported(self):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline(entries=[BaselineEntry(
            fingerprint="deadbeefdeadbeef", rule="RL005",
            path="src/gone.py", tracking="was fixed")])
        new, baselined, stale = baseline.partition(findings)
        assert len(new) == 3 and baselined == [] and len(stale) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == []

    def test_bad_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(target)

    def test_empty_tracking_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 1, "entries": [
            {"fingerprint": "ab", "rule": "RL001", "path": "x.py",
             "tracking": "  "}]}))
        with pytest.raises(ValueError, match="tracking"):
            load_baseline(target)


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
def run_cli(args, tree=None):
    out, err = io.StringIO(), io.StringIO()
    code = lint_main(args, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestCli:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        pkg = tmp_path / "src" / "repro" / "analysis"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(RL005_BAD)
        return tmp_path

    def test_exit_1_on_new_error(self, dirty_tree):
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                str(dirty_tree / "src")])
        assert code == 1
        assert "RL005" in out

    def test_exit_0_with_baseline(self, dirty_tree):
        code, _, _ = run_cli(["--root", str(dirty_tree),
                              "--baseline", "baseline.json",
                              "--update-baseline",
                              str(dirty_tree / "src")])
        assert code == 0
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--baseline", "baseline.json",
                                str(dirty_tree / "src")])
        assert code == 0
        assert "(baselined)" in out

    def test_update_prunes_stale_entries(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        (dirty_tree / "src" / "repro" / "analysis" / "dirty.py"
         ).write_text("x = 1\n")
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--baseline", str(baseline),
                                str(dirty_tree / "src")])
        assert code == 0 and "stale" in out
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        assert load_baseline(baseline).entries == []

    def test_json_output_schema(self, dirty_tree):
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--format", "json",
                                str(dirty_tree / "src")])
        payload = json.loads(out)
        assert set(payload) == {"version", "new", "baselined",
                                "stale_baseline_entries", "summary"}
        assert payload["summary"]["exit_code"] == code == 1
        assert payload["new"] and payload["new"][0]["rule"] == "RL005"

    def test_exit_2_on_unknown_select(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        code, _, err = run_cli(["--root", str(tmp_path),
                                "--select", "RL998", str(tmp_path)])
        assert code == 2 and "RL998" in err

    def test_exit_2_on_bad_baseline(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code, _, err = run_cli(["--root", str(tmp_path),
                                "--baseline", str(bad), str(tmp_path)])
        assert code == 2 and "baseline" in err

    def test_list_rules(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for code_name in ("RL001", "RL007", "RL008", "RL009", "RL010",
                          "RL011"):
            assert code_name in out

    def test_sarif_output(self, dirty_tree):
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--format", "sarif",
                                str(dirty_tree / "src")])
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RL001", "RL008", "RL011"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RL005"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            "src/repro/analysis/dirty.py"
        assert location["region"]["startColumn"] >= 1
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_sarif_baselined_results_demoted(self, dirty_tree):
        run_cli(["--root", str(dirty_tree), "--baseline",
                 "baseline.json", "--update-baseline",
                 str(dirty_tree / "src")])
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--baseline", "baseline.json",
                                "--format", "sarif",
                                str(dirty_tree / "src")])
        assert code == 0
        results = json.loads(out)["runs"][0]["results"]
        assert results
        assert all(r["baselineState"] == "unchanged" and
                   r["level"] == "note" for r in results)

    def test_graph_dump(self, dirty_tree):
        pkg = dirty_tree / "src" / "repro" / "analysis"
        (pkg / "locks.py").write_text(RL008_ORDERED_OK)
        code, out, _ = run_cli(["--root", str(dirty_tree), "--graph",
                                str(dirty_tree / "src")])
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"modules", "functions", "call_edges",
                                "lock_edges", "lock_cycles"}
        outers = {edge["outer"] for edge in payload["lock_edges"]}
        assert any(outer.endswith("lock_a") for outer in outers)
        assert payload["lock_cycles"] == []

    def test_baseline_prune_drops_stale(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        assert len(load_baseline(baseline).entries) == 3
        dirty = dirty_tree / "src" / "repro" / "analysis" / "dirty.py"
        dirty.write_text(RL005_BAD.replace(
            "    random.shuffle([1, 2])\n", ""))
        code, out, _ = run_cli(["baseline", "prune",
                                "--root", str(dirty_tree),
                                "--baseline", str(baseline),
                                str(dirty_tree / "src")])
        assert code == 0
        assert "pruned 1 stale entry" in out
        assert len(load_baseline(baseline).entries) == 2

    def test_baseline_prune_dry_run(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        (dirty_tree / "src" / "repro" / "analysis" / "dirty.py"
         ).write_text("x = 1\n")
        code, out, _ = run_cli(["baseline", "prune", "--dry-run",
                                "--root", str(dirty_tree),
                                "--baseline", str(baseline),
                                str(dirty_tree / "src")])
        assert code == 0 and "dry run" in out
        assert len(load_baseline(baseline).entries) == 3

    def test_baseline_prune_nothing_stale(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        code, out, _ = run_cli(["baseline", "prune",
                                "--root", str(dirty_tree),
                                "--baseline", str(baseline),
                                str(dirty_tree / "src")])
        assert code == 0 and "nothing to prune" in out
        assert len(load_baseline(baseline).entries) == 3

    def test_max_seconds_gate(self, dirty_tree):
        code, _, err = run_cli(["--root", str(dirty_tree),
                                "--max-seconds", "0", "--no-cache",
                                str(dirty_tree / "src" / "repro" /
                                    "analysis" / "dirty.py")])
        assert code == 1 and "--max-seconds" in err

    def test_default_cache_written_and_reused(self, dirty_tree):
        run_cli(["--root", str(dirty_tree), str(dirty_tree / "src")])
        cache_path = dirty_tree / "tools" / ".lint_cache.json"
        assert cache_path.exists()
        payload = json.loads(cache_path.read_text())
        assert "src/repro/analysis/dirty.py" in payload["files"]

    def test_no_cache_skips_the_file(self, dirty_tree):
        run_cli(["--root", str(dirty_tree), "--no-cache",
                 str(dirty_tree / "src")])
        assert not (dirty_tree / "tools" / ".lint_cache.json").exists()


# ----------------------------------------------------------------------
# Meta: the live tree is clean modulo the committed baseline
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_repro_clean_modulo_baseline(self):
        findings = analyze_paths([ROOT / "src" / "repro"], root=ROOT)
        baseline = load_baseline(BASELINE_PATH)
        new, _, _ = baseline.partition(
            [f for f in findings if f.severity == "error"])
        rendered = "\n".join(f.render() for f in new)
        assert not new, f"new repro-lint findings:\n{rendered}"

    def test_committed_baseline_is_near_empty(self):
        baseline = load_baseline(BASELINE_PATH)
        assert len(baseline.entries) <= 5
        for entry in baseline.entries:
            assert entry.tracking.strip()
