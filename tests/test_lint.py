"""Tests for :mod:`repro.lint` — rules, suppressions, baseline, CLI.

Fixture snippets are analysed with injected repo-relative paths
(``analyze_source(source, rel)``), so a fixture can be placed inside or
outside a rule's scope without touching the real tree.  The meta-test at
the bottom holds the live ``src/repro`` tree to the committed baseline.
"""

import io
import json
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Baseline,
    LintConfig,
    analyze_paths,
    analyze_source,
    lint_main,
    load_baseline,
    rule,
    save_baseline,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.core import FRAMEWORK_CODE

ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = ROOT / "tools" / "lint_baseline.json"

SERVING_REL = "src/repro/serving/fixture.py"
MODELS_REL = "src/repro/models/fixture.py"
OTHER_REL = "src/repro/analysis/fixture.py"


def codes(findings):
    return [f.rule for f in findings]


def lint(source, rel=OTHER_REL, select=None):
    return analyze_source(source, rel, select=select)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                "RL007"} <= set(RULES)

    def test_rules_carry_metadata(self):
        for meta in RULES.values():
            assert meta.title
            assert meta.rationale, f"{meta.code} has no rationale"
            assert meta.severity in ("error", "warning")

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("RL001", "again")(lambda ctx: [])

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            rule("RL999", "x", severity="fatal")

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="RL998"):
            lint("x = 1", select=["RL998"])


# ----------------------------------------------------------------------
# RL001 — blocking call in a lock
# ----------------------------------------------------------------------
RL001_BAD = """
def f(self):
    with self._lock:
        return self.provider.encode(["a"])
"""

RL001_COND_WAIT_OK = """
def f(self):
    with self._cond:
        self._cond.wait(timeout=1.0)
"""

RL001_DICT_GET_OK = """
def f(self):
    with self._lock:
        return self._pending.get("name")
"""

RL001_STR_JOIN_OK = """
def f(self):
    with self._lock:
        return ", ".join(self.names)
"""

RL001_STR_ENCODE_OK = """
import json
def f(self):
    with self._lock:
        self.buf += json.dumps({}).encode("utf-8")
        self.tag = "x".encode("utf-8")
"""

RL001_NESTED_DEF_OK = """
def f(self):
    with self._lock:
        def later():
            return self.queue.get()
        return later
"""

RL001_THREAD_JOIN_BAD = """
def f(self):
    with self._lock:
        self.worker_thread.join()
"""


class TestRL001:
    def test_encode_in_lock_flagged(self):
        assert codes(lint(RL001_BAD, select=["RL001"])) == ["RL001"]

    def test_thread_join_in_lock_flagged(self):
        assert codes(lint(RL001_THREAD_JOIN_BAD,
                          select=["RL001"])) == ["RL001"]

    @pytest.mark.parametrize("source", [
        RL001_COND_WAIT_OK, RL001_DICT_GET_OK, RL001_STR_JOIN_OK,
        RL001_STR_ENCODE_OK, RL001_NESTED_DEF_OK,
    ], ids=["cond-wait", "dict-get", "str-join", "str-encode",
            "nested-def"])
    def test_exemptions(self, source):
        assert lint(source, select=["RL001"]) == []

    def test_suppression(self):
        suppressed = RL001_BAD.replace(
            "return self.provider.encode([\"a\"])",
            "return self.provider.encode([\"a\"])  "
            "# repro-lint: allow[RL001] bounded by the flush watchdog")
        assert lint(suppressed, select=["RL001"]) == []


# ----------------------------------------------------------------------
# RL002 — unbounded waits in serving/training scope
# ----------------------------------------------------------------------
RL002_BAD = """
def f(self):
    self.event.wait()
    item = self.queue.get()
"""


class TestRL002:
    def test_flagged_in_scope(self):
        assert codes(lint(RL002_BAD, rel=SERVING_REL,
                          select=["RL002"])) == ["RL002", "RL002"]

    def test_out_of_scope_ignored(self):
        assert lint(RL002_BAD, rel=OTHER_REL, select=["RL002"]) == []

    def test_timeout_argument_accepted(self):
        ok = "def f(self):\n    self.event.wait(timeout=2.0)\n"
        assert lint(ok, rel=SERVING_REL, select=["RL002"]) == []

    def test_suppression(self):
        suppressed = RL002_BAD.replace(
            "self.event.wait()",
            "self.event.wait()  # repro-lint: allow[RL002] event is "
            "always set before this point")
        assert codes(lint(suppressed, rel=SERVING_REL,
                          select=["RL002"])) == ["RL002"]


# ----------------------------------------------------------------------
# RL003 — non-daemon threads
# ----------------------------------------------------------------------
RL003_BAD = """
import threading
def f():
    return threading.Thread(target=f)
"""

RL003_FALSE_BAD = """
import threading
def f():
    return threading.Thread(target=f, daemon=False)
"""

RL003_OK = """
import threading
def f():
    return threading.Thread(target=f, daemon=True)
"""

RL003_ALIASED_BAD = """
from threading import Thread
def f():
    return Thread(target=f)
"""


class TestRL003:
    def test_missing_daemon_flagged(self):
        assert codes(lint(RL003_BAD, select=["RL003"])) == ["RL003"]

    def test_daemon_false_flagged(self):
        assert codes(lint(RL003_FALSE_BAD, select=["RL003"])) == ["RL003"]

    def test_aliased_import_flagged(self):
        assert codes(lint(RL003_ALIASED_BAD, select=["RL003"])) == ["RL003"]

    def test_daemon_true_accepted(self):
        assert lint(RL003_OK, select=["RL003"]) == []

    def test_suppression(self):
        suppressed = RL003_BAD.replace(
            "return threading.Thread(target=f)",
            "# repro-lint: allow[RL003] joined explicitly in close()\n"
            "    return threading.Thread(target=f)")
        assert lint(suppressed, select=["RL003"]) == []


# ----------------------------------------------------------------------
# RL004 — non-atomic writes in checkpoint/store scope
# ----------------------------------------------------------------------
RL004_BAD = """
import json
import numpy as np
from pathlib import Path

def save(path, meta, arrays):
    Path(path).write_text(json.dumps(meta))
    with open(path, "w") as handle:
        handle.write("x")
    np.savez(path, **arrays)
"""

RL004_OK = """
import io
import numpy as np
from repro.ioutil import atomic_write_bytes

def save(path, arrays, record):
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())
    with open(path, "a", encoding="utf-8") as handle:  # append-only log
        handle.write(record)
"""

RL004_IMPL_OK = """
import os
def atomic_write_text(path, text):
    with open(path, "w") as handle:
        handle.write(text)
"""


class TestRL004:
    def test_truncating_writes_flagged(self):
        found = codes(lint(RL004_BAD, rel=MODELS_REL, select=["RL004"]))
        assert found == ["RL004", "RL004", "RL004"]

    def test_out_of_scope_ignored(self):
        assert lint(RL004_BAD, rel=OTHER_REL, select=["RL004"]) == []

    def test_atomic_pattern_accepted(self):
        assert lint(RL004_OK, rel=MODELS_REL, select=["RL004"]) == []

    def test_atomic_impl_function_exempt(self):
        assert lint(RL004_IMPL_OK, rel=MODELS_REL, select=["RL004"]) == []

    def test_suppression(self):
        suppressed = RL004_BAD.replace(
            "Path(path).write_text(json.dumps(meta))",
            "Path(path).write_text(json.dumps(meta))  "
            "# repro-lint: allow[RL004] scratch file, never reloaded")
        assert codes(lint(suppressed, rel=MODELS_REL,
                          select=["RL004"])) == ["RL004", "RL004"]


# ----------------------------------------------------------------------
# RL005 — global RNG
# ----------------------------------------------------------------------
RL005_BAD = """
import random
import numpy as np

def f():
    random.shuffle([1, 2])
    np.random.seed(0)
    return np.random.normal(size=3)
"""

RL005_OK = """
import numpy as np
import random

def f(seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(size=3), local.random()
"""

RL005_FROM_IMPORT_BAD = """
from numpy.random import rand
from random import shuffle
"""


class TestRL005:
    def test_global_calls_flagged(self):
        assert codes(lint(RL005_BAD, select=["RL005"])) == \
            ["RL005", "RL005", "RL005"]

    def test_seeded_generators_accepted(self):
        assert lint(RL005_OK, select=["RL005"]) == []

    def test_from_imports_flagged(self):
        assert codes(lint(RL005_FROM_IMPORT_BAD,
                          select=["RL005"])) == ["RL005", "RL005"]

    def test_suppression(self):
        suppressed = RL005_BAD.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro-lint: allow[RL005] test-only "
            "harness seeding")
        assert codes(lint(suppressed, select=["RL005"])) == \
            ["RL005", "RL005"]


# ----------------------------------------------------------------------
# RL006 — silent broad excepts
# ----------------------------------------------------------------------
RL006_BARE = """
def f():
    try:
        g()
    except:
        pass
"""

RL006_SILENT = """
def f():
    try:
        g()
    except Exception:
        pass
"""

RL006_LOGGED_OK = """
def f(self):
    try:
        g()
    except Exception as error:
        self.metrics.emit("error", error=repr(error))
"""

RL006_RERAISE_OK = """
def f():
    try:
        g()
    except Exception:
        raise
"""

RL006_NAME_USED_OK = """
def f(self):
    try:
        g()
    except BaseException as caught:
        self.error = caught
"""

RL006_NARROW_OK = """
def f():
    try:
        g()
    except (OSError, ValueError):
        pass
"""


class TestRL006:
    def test_bare_except_flagged(self):
        assert codes(lint(RL006_BARE, select=["RL006"])) == ["RL006"]

    def test_silent_broad_except_flagged(self):
        assert codes(lint(RL006_SILENT, select=["RL006"])) == ["RL006"]

    @pytest.mark.parametrize("source", [
        RL006_LOGGED_OK, RL006_RERAISE_OK, RL006_NAME_USED_OK,
        RL006_NARROW_OK,
    ], ids=["logged", "reraise", "name-used", "narrow"])
    def test_exemptions(self, source):
        assert lint(source, select=["RL006"]) == []

    def test_suppression(self):
        suppressed = RL006_SILENT.replace(
            "except Exception:",
            "except Exception:  # repro-lint: allow[RL006] best-effort "
            "cleanup, failure is fine")
        assert lint(suppressed, select=["RL006"]) == []


# ----------------------------------------------------------------------
# RL007 — metric-name / prompt-token drift
# ----------------------------------------------------------------------
RL007_METRIC_BAD = """
def f(metrics):
    metrics.counter("serving.requests").inc()
    metrics.counter(f"serving.latency.{0}").inc()
"""

RL007_TOKEN_BAD = """
def f(name):
    return f"[ENT] {name}"
"""

RL007_SEPARATOR_BAD = """
def f(parts):
    return "|".join(parts)
"""

RL007_BENCH_BAD = """
def f(record):
    record("bench.train_step", {"step_ms": 1.0})
"""

RL007_DOCSTRING_OK = '''
def f():
    """Wraps entities in the [ENT] format, e.g. serving.requests."""
    return None
'''


class TestRL007:
    def test_metric_literal_flagged(self):
        assert codes(lint(RL007_METRIC_BAD, rel=SERVING_REL,
                          select=["RL007"])) == ["RL007", "RL007"]

    def test_metric_names_module_exempt(self):
        assert lint(RL007_METRIC_BAD,
                    rel="src/repro/serving/metric_names.py",
                    select=["RL007"]) == []

    def test_prompt_token_flagged(self):
        assert codes(lint(RL007_TOKEN_BAD, rel=MODELS_REL,
                          select=["RL007"])) == ["RL007"]

    def test_templates_module_exempt(self):
        assert lint(RL007_TOKEN_BAD,
                    rel="src/repro/prompts/templates.py",
                    select=["RL007"]) == []

    def test_bench_id_flagged(self):
        found = lint(RL007_BENCH_BAD, rel=OTHER_REL, select=["RL007"])
        assert codes(found) == ["RL007"]
        assert "repro.bench.registry" in found[0].message

    def test_bench_registry_module_exempt(self):
        assert lint(RL007_BENCH_BAD,
                    rel="src/repro/bench/registry.py",
                    select=["RL007"]) == []

    def test_bench_id_not_misreported_as_metric(self):
        # A bench id in the metric-names module is still a bench finding,
        # not silently accepted by the serving-metric exemption.
        found = lint(RL007_BENCH_BAD,
                     rel="src/repro/serving/metric_names.py",
                     select=["RL007"])
        assert codes(found) == ["RL007"]
        assert "benchmark id" in found[0].message

    def test_separator_flagged_in_prompt_scope(self):
        assert codes(lint(RL007_SEPARATOR_BAD,
                          rel="src/repro/corpus/fixture.py",
                          select=["RL007"])) == ["RL007"]

    def test_separator_ignored_elsewhere(self):
        assert lint(RL007_SEPARATOR_BAD, rel=OTHER_REL,
                    select=["RL007"]) == []

    def test_index_metric_literal_flagged(self):
        source = """
def f(metrics):
    metrics.counter("index.queries").inc()
"""
        assert codes(lint(source, rel=OTHER_REL,
                          select=["RL007"])) == ["RL007"]

    def test_filename_shaped_strings_exempt(self):
        # "index.json" / "train.log" are file names, not metric ids.
        source = """
def f(directory):
    return [directory / "index.json", directory / "train.log"]
"""
        assert lint(source, rel=OTHER_REL, select=["RL007"]) == []

    def test_docstring_mentions_exempt(self):
        assert lint(RL007_DOCSTRING_OK, rel=MODELS_REL,
                    select=["RL007"]) == []

    def test_suppression(self):
        suppressed = RL007_TOKEN_BAD.replace(
            'return f"[ENT] {name}"',
            'return f"[ENT] {name}"  # repro-lint: allow[RL007] '
            'golden-output fixture')
        assert lint(suppressed, rel=MODELS_REL, select=["RL007"]) == []


# ----------------------------------------------------------------------
# Framework: suppressions, syntax errors, fingerprints
# ----------------------------------------------------------------------
class TestFramework:
    def test_suppression_without_reason_is_finding(self):
        source = "x = 1  # repro-lint: allow[RL005]\n"
        found = lint(source)
        assert codes(found) == [FRAMEWORK_CODE]
        assert "reason" in found[0].message

    def test_malformed_suppression_is_finding(self):
        source = "x = 1  # repro-lint: disable everything\n"
        assert codes(lint(source)) == [FRAMEWORK_CODE]

    def test_syntax_error_is_finding(self):
        assert codes(lint("def broken(:\n")) == [FRAMEWORK_CODE]

    def test_suppression_on_line_above(self):
        source = ("# repro-lint: allow[RL006] placeholder for a fixture\n"
                  "try:\n    g()\nexcept Exception:\n    pass\n")
        # The handler starts on the line after the comment... place it
        # directly above the except instead.
        source = ("try:\n    g()\n"
                  "# repro-lint: allow[RL006] fixture needs the swallow\n"
                  "except Exception:\n    pass\n")
        assert lint(source, select=["RL006", FRAMEWORK_CODE]) == []

    def test_fingerprint_survives_line_drift(self):
        before = lint(RL005_BAD, select=["RL005"])
        after = lint("\n\n# a new comment\n" + RL005_BAD, select=["RL005"])
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]
        assert [f.line for f in before] != [f.line for f in after]

    def test_fingerprint_changes_with_line_edit(self):
        before = lint(RL005_BAD, select=["RL005"])
        edited = lint(RL005_BAD.replace("np.random.seed(0)",
                                        "np.random.seed(42)"),
                      select=["RL005"])
        assert before[1].fingerprint != edited[1].fingerprint

    def test_finding_dict_schema(self):
        finding = lint(RL005_BAD, select=["RL005"])[0]
        payload = finding.to_dict()
        assert set(payload) == {"rule", "severity", "path", "line", "col",
                                "message", "line_text", "qualname",
                                "fingerprint"}

    def test_config_is_injectable(self):
        config = LintConfig(bounded_wait_scope=("src/repro/analysis/",))
        found = analyze_source(RL002_BAD, OTHER_REL, config=config,
                               select=["RL002"])
        assert codes(found) == ["RL002", "RL002"]


# ----------------------------------------------------------------------
# Baseline round-trips
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline.from_findings(findings, tracking="issue #12")
        target = tmp_path / "baseline.json"
        save_baseline(baseline, target)
        loaded = load_baseline(target)
        assert loaded.fingerprints == baseline.fingerprints
        assert all(e.tracking == "issue #12" for e in loaded.entries)

    def test_partition(self):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline.from_findings(findings[:1])
        new, baselined, stale = baseline.partition(findings)
        assert len(new) == 2 and len(baselined) == 1 and stale == []

    def test_stale_entries_reported(self):
        findings = lint(RL005_BAD, select=["RL005"])
        baseline = Baseline(entries=[BaselineEntry(
            fingerprint="deadbeefdeadbeef", rule="RL005",
            path="src/gone.py", tracking="was fixed")])
        new, baselined, stale = baseline.partition(findings)
        assert len(new) == 3 and baselined == [] and len(stale) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == []

    def test_bad_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(target)

    def test_empty_tracking_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 1, "entries": [
            {"fingerprint": "ab", "rule": "RL001", "path": "x.py",
             "tracking": "  "}]}))
        with pytest.raises(ValueError, match="tracking"):
            load_baseline(target)


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
def run_cli(args, tree=None):
    out, err = io.StringIO(), io.StringIO()
    code = lint_main(args, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestCli:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        pkg = tmp_path / "src" / "repro" / "analysis"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(RL005_BAD)
        return tmp_path

    def test_exit_1_on_new_error(self, dirty_tree):
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                str(dirty_tree / "src")])
        assert code == 1
        assert "RL005" in out

    def test_exit_0_with_baseline(self, dirty_tree):
        code, _, _ = run_cli(["--root", str(dirty_tree),
                              "--baseline", "baseline.json",
                              "--update-baseline",
                              str(dirty_tree / "src")])
        assert code == 0
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--baseline", "baseline.json",
                                str(dirty_tree / "src")])
        assert code == 0
        assert "(baselined)" in out

    def test_update_prunes_stale_entries(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        (dirty_tree / "src" / "repro" / "analysis" / "dirty.py"
         ).write_text("x = 1\n")
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--baseline", str(baseline),
                                str(dirty_tree / "src")])
        assert code == 0 and "stale" in out
        run_cli(["--root", str(dirty_tree), "--baseline", str(baseline),
                 "--update-baseline", str(dirty_tree / "src")])
        assert load_baseline(baseline).entries == []

    def test_json_output_schema(self, dirty_tree):
        code, out, _ = run_cli(["--root", str(dirty_tree),
                                "--format", "json",
                                str(dirty_tree / "src")])
        payload = json.loads(out)
        assert set(payload) == {"version", "new", "baselined",
                                "stale_baseline_entries", "summary"}
        assert payload["summary"]["exit_code"] == code == 1
        assert payload["new"] and payload["new"][0]["rule"] == "RL005"

    def test_exit_2_on_unknown_select(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        code, _, err = run_cli(["--root", str(tmp_path),
                                "--select", "RL998", str(tmp_path)])
        assert code == 2 and "RL998" in err

    def test_exit_2_on_bad_baseline(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code, _, err = run_cli(["--root", str(tmp_path),
                                "--baseline", str(bad), str(tmp_path)])
        assert code == 2 and "baseline" in err

    def test_list_rules(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for code_name in ("RL001", "RL007"):
            assert code_name in out


# ----------------------------------------------------------------------
# Meta: the live tree is clean modulo the committed baseline
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_repro_clean_modulo_baseline(self):
        findings = analyze_paths([ROOT / "src" / "repro"], root=ROOT)
        baseline = load_baseline(BASELINE_PATH)
        new, _, _ = baseline.partition(
            [f for f in findings if f.severity == "error"])
        rendered = "\n".join(f.render() for f in new)
        assert not new, f"new repro-lint findings:\n{rendered}"

    def test_committed_baseline_is_near_empty(self):
        baseline = load_baseline(BASELINE_PATH)
        assert len(baseline.entries) <= 5
        for entry in baseline.entries:
            assert entry.tracking.strip()
