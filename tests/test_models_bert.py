"""Tests for the BERT backbone, MLM head, and embedding overrides."""

import numpy as np
import pytest

from repro.models import BertConfig, BertEncoder, BertForMaskedLM
from repro.tensor import Tensor


def _config(vocab=50, max_len=12):
    return BertConfig(vocab_size=vocab, d_model=16, num_layers=2,
                      num_heads=2, d_ff=32, max_len=max_len, dropout=0.0)


def rng():
    return np.random.default_rng(33)


class TestBertConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BertConfig(vocab_size=3)
        with pytest.raises(ValueError):
            BertConfig(vocab_size=50, d_model=10, num_heads=4)


class TestBertEncoder:
    def test_forward_shape(self):
        enc = BertEncoder(_config(), rng())
        ids = np.zeros((2, 8), dtype=np.int64)
        out = enc(ids)
        assert out.shape == (2, 8, 16)

    def test_sequence_too_long_raises(self):
        enc = BertEncoder(_config(max_len=4), rng())
        with pytest.raises(ValueError):
            enc(np.zeros((1, 5), dtype=np.int64))

    def test_cls_embeddings(self):
        enc = BertEncoder(_config(), rng())
        out = enc.cls_embeddings(np.zeros((3, 6), dtype=np.int64))
        assert out.shape == (3, 16)

    def test_position_sensitivity(self):
        enc = BertEncoder(_config(), rng()).eval()
        a = enc(np.array([[7, 8, 9]])).data
        b = enc(np.array([[9, 8, 7]])).data
        assert not np.allclose(a, b)

    def test_override_replaces_embedding(self):
        enc = BertEncoder(_config(), rng()).eval()
        ids = np.array([[5, 6, 7]])
        positions = np.array([[0, 1]])
        vectors = Tensor(np.full((1, 16), 2.5))
        plain = enc.embed(ids).data
        overridden = enc.embed(ids, embedding_overrides=(positions, vectors)).data
        assert not np.allclose(plain[0, 1], overridden[0, 1])
        assert np.allclose(plain[0, 0], overridden[0, 0])
        assert np.allclose(plain[0, 2], overridden[0, 2])

    def test_empty_override_is_noop(self):
        enc = BertEncoder(_config(), rng()).eval()
        ids = np.array([[5, 6, 7]])
        plain = enc.embed(ids).data
        same = enc.embed(ids, embedding_overrides=(
            np.zeros((0, 2), dtype=np.int64), Tensor(np.zeros((0, 16))))).data
        assert np.allclose(plain, same)

    def test_override_shape_validation(self):
        enc = BertEncoder(_config(), rng())
        with pytest.raises(ValueError):
            enc.embed(np.zeros((1, 3), dtype=np.int64),
                      embedding_overrides=(np.array([[0, 1, 2]]),
                                           Tensor(np.zeros((1, 16)))))

    def test_gradient_flows_through_override(self):
        enc = BertEncoder(_config(), rng())
        ids = np.array([[5, 6, 7]])
        vectors = Tensor(np.ones((1, 16)), requires_grad=True)
        out = enc(ids, embedding_overrides=(np.array([[0, 1]]), vectors))
        out.sum().backward()
        assert vectors.grad is not None
        assert np.abs(vectors.grad).sum() > 0


class TestMaskedLM:
    def test_logits_shape(self):
        model = BertForMaskedLM(_config(vocab=30), rng())
        logits = model(np.zeros((2, 5), dtype=np.int64))
        assert logits.shape == (2, 5, 30)

    def test_loss_ignores_unmasked(self):
        model = BertForMaskedLM(_config(vocab=30), rng())
        ids = np.array([[2, 7, 8, 3]])
        labels = np.full_like(ids, model.IGNORE_INDEX)
        loss = model.mlm_loss(ids, labels)
        assert loss.data == 0.0

    def test_loss_positive_when_masked(self):
        model = BertForMaskedLM(_config(vocab=30), rng())
        ids = np.array([[2, 4, 8, 3]])
        labels = np.full_like(ids, model.IGNORE_INDEX)
        labels[0, 1] = 7
        loss = model.mlm_loss(ids, labels)
        assert loss.data > 0

    def test_training_learns_simple_pattern(self):
        """The model must learn to fill a fixed masked position."""
        from repro import nn
        config = _config(vocab=20, max_len=6)
        model = BertForMaskedLM(config, rng())
        # Pattern: sentence [2, 10, MASK(4), 12, 3] with answer always 11.
        ids = np.array([[2, 10, 4, 12, 3]] * 4)
        labels = np.full_like(ids, model.IGNORE_INDEX)
        labels[:, 2] = 11
        opt = nn.Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(40):
            opt.zero_grad()
            loss = model.mlm_loss(ids, labels)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first * 0.2
        pred = model(ids[:1]).data[0, 2].argmax()
        assert pred == 11

    def test_grow_vocab(self):
        model = BertForMaskedLM(_config(vocab=30), rng())
        model.grow_vocab(5, rng())
        assert model.config.vocab_size == 35
        logits = model(np.zeros((1, 4), dtype=np.int64))
        assert logits.shape[-1] == 35

    def test_grow_vocab_zero_noop(self):
        model = BertForMaskedLM(_config(vocab=30), rng())
        model.grow_vocab(0, rng())
        assert model.config.vocab_size == 30
