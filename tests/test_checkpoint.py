"""Tests for KTeleBERT checkpoint save/load."""

import json

import numpy as np
import pytest

from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.models import (
    KTeleBert,
    KTeleBertConfig,
    TeleBertTrainer,
    TextRow,
    load_ktelebert,
    save_ktelebert,
)
from repro.training.stage2 import build_stage2_data
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def model():
    world = TelecomWorld.generate(seed=41, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    corpus = build_tele_corpus(world, seed=41)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(3)
    trainer = TeleBertTrainer(corpus.sentences, seed=41, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32, max_len=24)
    trainer.train(steps=2)
    data = build_stage2_data(corpus, episodes, kg, seed=41, ke_negatives=2)
    return KTeleBert.from_telebert(
        trainer, KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=41)


SENTENCES = ["[ALM] The link is down", "[DOC] routine check completed"]


class TestRoundTrip:
    def test_embeddings_identical_after_reload(self, model, tmp_path):
        before = model.encode_texts(SENTENCES)
        save_ktelebert(model, tmp_path / "ckpt")
        restored = load_ktelebert(tmp_path / "ckpt")
        after = restored.encode_texts(SENTENCES)
        assert np.allclose(before, after)

    def test_vocab_preserved(self, model, tmp_path):
        save_ktelebert(model, tmp_path / "ckpt")
        restored = load_ktelebert(tmp_path / "ckpt")
        assert len(restored.tokenizer.vocab) == len(model.tokenizer.vocab)
        assert restored.tokenizer.vocab.is_special("[NUM]")

    def test_normalizer_preserved(self, model, tmp_path):
        save_ktelebert(model, tmp_path / "ckpt")
        restored = load_ktelebert(tmp_path / "ckpt")
        tag = model.tag_names[0]
        low, high = model.normalizer.ranges[tag]
        probe = (low + high) / 2
        assert restored.normalizer.transform_one(tag, probe) == \
            model.normalizer.transform_one(tag, probe)

    def test_config_preserved(self, model, tmp_path):
        save_ktelebert(model, tmp_path / "ckpt")
        restored = load_ktelebert(tmp_path / "ckpt")
        assert restored.config == model.config
        assert restored.bert_config.d_model == model.bert_config.d_model

    def test_directory_contents(self, model, tmp_path):
        path = save_ktelebert(model, tmp_path / "ckpt")
        assert (path / "meta.json").exists()
        assert (path / "vocab.json").exists()
        assert (path / "weights.npz").exists()

    def test_unsupported_format_rejected(self, model, tmp_path):
        path = save_ktelebert(model, tmp_path / "ckpt")
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 999
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_ktelebert(path)

    def test_restored_model_can_train(self, model, tmp_path):
        """A reloaded model is trainable, not just servable."""
        from repro.training import DynamicMasker
        save_ktelebert(model, tmp_path / "ckpt")
        restored = load_ktelebert(tmp_path / "ckpt")
        masker = DynamicMasker(restored.tokenizer.vocab,
                               np.random.default_rng(0), masking_rate=0.3)
        loss, _ = restored.masked_lm_loss([TextRow(s) for s in SENTENCES],
                                          masker)
        loss.backward()
        grads = [p.grad is not None for p in restored.parameters()]
        assert any(grads)
