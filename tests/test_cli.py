"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.table == "all"
        assert args.seeds == [0]

    def test_seed_parsing(self):
        args = build_parser().parse_args(["reproduce", "--seeds", "1,2,3"])
        assert args.seeds == [1, 2, 3]

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--seeds", ","])

    def test_pretrain_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pretrain"])


class TestSimulate:
    def test_prints_json_stats(self, capsys):
        code = main(["simulate", "--seed", "3", "--episodes", "5"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["episodes"] == 5
        assert stats["alarms"] > 0
        assert stats["kg"]["triples"] > 0


class TestReproduce:
    def test_single_stats_table(self, capsys, tmp_path):
        code = main(["reproduce", "--table", "3",
                     "--out", str(tmp_path / "results")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert (tmp_path / "results" / "table_3.txt").exists()

    def test_unknown_table(self, capsys):
        assert main(["reproduce", "--table", "99"]) == 2


class TestEncodeRoundTrip:
    def test_pretrain_then_encode(self, capsys, tmp_path):
        """Tiny end-to-end CLI flow: pretrain -> checkpoint -> encode."""
        code = main(["pretrain", "--out", str(tmp_path / "ckpt"),
                     "--strategy", "stl",
                     "--stage1-steps", "2", "--stage2-steps", "2"])
        assert code == 0
        capsys.readouterr()
        code = main(["encode", "--checkpoint", str(tmp_path / "ckpt"),
                     "--text", "[ALM] The link is down"])
        assert code == 0
        line = capsys.readouterr().out.strip().splitlines()[-1]
        payload = json.loads(line)
        assert payload["text"].startswith("[ALM]")
        assert len(payload["embedding"]) == 32


class TestLint:
    """``python -m repro lint`` forwards to the repro.lint driver."""

    ROOT = Path(__file__).resolve().parents[1]

    def test_parser_has_lint_subcommand(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"

    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", "--root", str(self.ROOT),
                     "--baseline", str(self.ROOT / "tools" /
                                       "lint_baseline.json")])
        assert code == 0
        assert "repro-lint:" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "RL007" in out

    def test_json_format(self, capsys):
        code = main(["lint", "--root", str(self.ROOT), "--format", "json",
                     str(self.ROOT / "src" / "repro" / "lint")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new_errors"] == 0

    def test_unknown_rule_code_is_usage_error(self, capsys):
        code = main(["lint", "--root", str(self.ROOT), "--select", "RL998",
                     str(self.ROOT / "src" / "repro" / "lint")])
        assert code == 2
        assert "RL998" in capsys.readouterr().err
