"""Tests for KPI time series, the GAT ablation model, and triple classification."""

import numpy as np
import pytest

from repro.kge import TransE, triple_classification
from repro.tasks.rca import GatRcaModel, GraphAttentionLayer, build_rca_dataset
from repro.tensor import Tensor
from repro.world import (
    KpiSeriesGenerator,
    TelecomWorld,
    detect_anomalies,
    detection_f1,
    rolling_zscore,
)


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=29, alarms_per_theme=2,
                                 kpis_per_theme=2, topology_nodes=8)


class TestKpiSeries:
    def _series(self, world, fault_windows=None):
        generator = KpiSeriesGenerator(np.random.default_rng(0))
        return generator.generate(world.ontology.kpis[0], start_time=0.0,
                                  duration=2 * 86_400.0, interval=600.0,
                                  fault_windows=fault_windows)

    def test_normal_series_stays_in_band(self, world):
        kpi = world.ontology.kpis[0]
        series = self._series(world)
        margin = (kpi.normal_high - kpi.normal_low) * 0.25
        assert (series.values > kpi.normal_low - margin).all()
        assert (series.values < kpi.normal_high + margin).all()
        assert not series.anomaly_mask.any()

    def test_daily_cycle_present(self, world):
        """Autocorrelation at one day should exceed half-day correlation."""
        series = self._series(world)
        values = series.values - series.values.mean()
        samples_per_day = int(86_400.0 / 600.0)
        full_day = np.corrcoef(values[:-samples_per_day],
                               values[samples_per_day:])[0, 1]
        half_day = np.corrcoef(values[:-samples_per_day // 2],
                               values[samples_per_day // 2:])[0, 1]
        assert full_day > half_day

    def test_fault_window_outside_band(self, world):
        kpi = world.ontology.kpis[0]
        series = self._series(world, fault_windows=[(40_000.0, 60_000.0)])
        assert series.anomaly_mask.any()
        inside = series.values[series.anomaly_mask]
        if kpi.anomaly_direction == "up":
            assert (inside > kpi.normal_high).all()
        else:
            assert (inside < kpi.normal_low).all()

    def test_validation(self, world):
        generator = KpiSeriesGenerator(np.random.default_rng(0))
        with pytest.raises(ValueError):
            generator.generate(world.ontology.kpis[0], 0.0, duration=-1.0)


class TestAnomalyDetection:
    def test_rolling_zscore_flags_spike(self):
        values = np.ones(50)
        values[40] = 100.0
        scores = rolling_zscore(values + np.random.default_rng(0).normal(
            0, 0.01, 50), window=10)
        assert abs(scores[40]) > 4.0

    def test_constant_history_scores_zero(self):
        scores = rolling_zscore(np.ones(30), window=5)
        assert np.allclose(scores, 0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            rolling_zscore(np.ones(10), window=1)

    def test_detector_catches_injected_fault(self, world):
        generator = KpiSeriesGenerator(np.random.default_rng(1),
                                       noise_scale=0.01)
        series = generator.generate(world.ontology.kpis[0], 0.0,
                                    duration=2 * 86_400.0, interval=600.0,
                                    fault_windows=[(100_000.0, 110_000.0)])
        predictions = detect_anomalies(series, window=12, threshold=4.0)
        truth_start = np.nonzero(series.anomaly_mask)[0][0]
        # The onset of the fault must be flagged.  (A short-window z-score
        # detector flags the level shift, not the whole window, so overall
        # F1 is modest by construction.)
        assert predictions[truth_start:truth_start + 3].any()
        assert detection_f1(series) > 0.0


class TestGat:
    def test_layer_shapes(self):
        layer = GraphAttentionLayer(8, 4, np.random.default_rng(0))
        hidden = Tensor(np.random.default_rng(1).normal(size=(5, 8)))
        adjacency = np.eye(5)
        out = layer(hidden, adjacency)
        assert out.shape == (5, 4)

    def test_attention_respects_graph(self):
        """Disconnected nodes must not influence each other."""
        layer = GraphAttentionLayer(4, 4, np.random.default_rng(0),
                                    activation=False)
        rng = np.random.default_rng(1)
        hidden = rng.normal(size=(4, 4))
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        out1 = layer(Tensor(hidden), adjacency).data.copy()
        hidden2 = hidden.copy()
        hidden2[3] = rng.normal(size=4)  # perturb an unconnected node
        out2 = layer(Tensor(hidden2), adjacency).data
        assert np.allclose(out1[0], out2[0])
        assert np.allclose(out1[1], out2[1])

    def test_model_trains(self, world):
        from repro.nn.optim import Adam
        episodes = world.simulate_episodes(8)
        dataset = build_rca_dataset(world, episodes)
        model = GatRcaModel(8, np.random.default_rng(0), hidden=8, out=4,
                            mlp_hidden=4)
        embeddings = np.random.default_rng(1).normal(
            size=(dataset.num_features, 8))
        state = dataset.states[0]
        optimizer = Adam(model.parameters(), lr=1e-2)
        first = float(model.loss(state, embeddings).data)
        for _ in range(20):
            optimizer.zero_grad()
            loss = model.loss(state, embeddings)
            loss.backward()
            optimizer.step()
        assert float(model.loss(state, embeddings).data) < first


class TestTripleClassification:
    def _model_and_data(self):
        # Entities on a line; relation 0 translates by +1 step.
        entities = np.array([[float(i), 0.0] for i in range(6)])
        model = TransE(6, 1, 2, np.random.default_rng(0),
                       entity_init=entities)
        model.relation_embeddings.data[0] = [1.0, 0.0]
        positives = np.array([(i, 0, i + 1) for i in range(5)])
        negatives = np.array([(i, 0, (i + 3) % 6) for i in range(5)])
        return model, positives, negatives

    def test_perfect_separation(self):
        model, positives, negatives = self._model_and_data()
        result = triple_classification(model, positives, negatives,
                                       positives, negatives)
        assert result.accuracy == 1.0
        assert 0 in result.thresholds

    def test_unseen_relation_uses_global_threshold(self):
        model, positives, negatives = self._model_and_data()
        test_pos = positives.copy()
        result = triple_classification(model, positives, negatives,
                                       test_pos, negatives)
        assert result.accuracy > 0.9

    def test_validation(self):
        model, positives, negatives = self._model_and_data()
        with pytest.raises(ValueError):
            triple_classification(model, positives[:0], negatives,
                                  positives, negatives)
        with pytest.raises(ValueError):
            triple_classification(model, positives[:, :2], negatives,
                                  positives, negatives)
