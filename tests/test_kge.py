"""Tests for TransE/GTransE and link-prediction ranking."""

import numpy as np
import pytest

from repro.kge import GTransE, TransE, UncertainTriple, link_prediction_ranks
from repro.nn.optim import Adam


def rng():
    return np.random.default_rng(44)


def _chain_triples(n=8):
    """A simple chain 0->1->2->... with relation 0."""
    return [(i, 0, i + 1) for i in range(n - 1)]


class TestTransE:
    def test_score_shape(self):
        model = TransE(5, 2, 8, rng())
        scores = model.score(np.array([0, 1]), np.array([0, 1]),
                             np.array([2, 3]))
        assert scores.shape == (2,)
        assert (scores.data >= 0).all()

    def test_entity_init(self):
        init = np.ones((5, 4))
        model = TransE(5, 2, 4, rng(), entity_init=init)
        assert np.allclose(model.entity_embeddings.data, 1.0)

    def test_entity_init_shape_validation(self):
        with pytest.raises(ValueError):
            TransE(5, 2, 4, rng(), entity_init=np.ones((3, 4)))

    def test_counts_validation(self):
        with pytest.raises(ValueError):
            TransE(0, 1, 4, rng())

    def test_score_all_tails(self):
        model = TransE(6, 2, 4, rng())
        scores = model.score_all_tails(0, 1)
        assert scores.shape == (6,)

    def test_normalize_entities(self):
        model = TransE(5, 2, 4, rng())
        model.entity_embeddings.data *= 100
        model.normalize_entities()
        norms = np.linalg.norm(model.entity_embeddings.data, axis=1)
        assert (norms <= 1.0 + 1e-9).all()

    def test_training_learns_chain(self):
        triples = _chain_triples(6)
        model = TransE(6, 1, 16, rng())
        opt = Adam(model.parameters(), lr=0.05)
        gen = np.random.default_rng(0)
        positives = np.array(triples)
        for _ in range(150):
            negatives = positives.copy()
            corrupt = gen.integers(0, 6, size=len(triples))
            negatives[:, 2] = corrupt
            valid = negatives[:, 2] != positives[:, 2]
            if not valid.any():
                continue
            opt.zero_grad()
            loss = model.margin_loss(positives[valid], negatives[valid],
                                     margin=1.0)
            loss.backward()
            opt.step()
            model.normalize_entities()
        ranks = link_prediction_ranks(model, triples, known_triples=triples)
        assert np.mean(ranks) < 2.5


class TestGTransE:
    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            UncertainTriple(0, 0, 1, confidence=1.5)

    def test_loss_shape_validation(self):
        model = GTransE(5, 2, 4, rng())
        quads = [UncertainTriple(0, 0, 1, 0.9)]
        with pytest.raises(ValueError):
            model.confidence_loss(quads, np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError):
            model.confidence_loss([], np.zeros((0, 3), dtype=int))

    def test_confidence_scales_margin(self):
        """High-confidence facts must yield >= loss than low-confidence ones
        for identical embeddings (the margin is larger)."""
        model = GTransE(5, 2, 4, rng(), margin=2.0, alpha=1.0)
        negatives = np.array([[0, 0, 3]])
        high = model.confidence_loss([UncertainTriple(0, 0, 1, 1.0)], negatives)
        low = model.confidence_loss([UncertainTriple(0, 0, 1, 0.1)], negatives)
        assert float(high.data) >= float(low.data)

    def test_gradients_flow(self):
        model = GTransE(5, 2, 4, rng())
        quads = [UncertainTriple(0, 0, 1, 0.9),
                 UncertainTriple(1, 1, 2, 0.5)]
        loss = model.confidence_loss(quads, np.array([[0, 0, 3], [1, 1, 4]]))
        loss.backward()
        assert model.entity_embeddings.grad is not None
        assert model.relation_embeddings.grad is not None


class TestLinkPredictionRanks:
    def test_perfect_embeddings_rank_first(self):
        # Construct embeddings where h + r == t exactly.
        entities = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [5.0, 5.0]])
        model = TransE(4, 1, 2, rng(), entity_init=entities)
        model.relation_embeddings.data[0] = [1.0, 0.0]
        ranks = link_prediction_ranks(model, [(0, 0, 1), (1, 0, 2)])
        assert ranks == [1, 1]

    def test_filtering_removes_known_competitors(self):
        entities = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1e-4], [9.0, 9.0]])
        model = TransE(4, 1, 2, rng(), entity_init=entities)
        model.relation_embeddings.data[0] = [1.0, 0.0]
        # Target (0,0,2); entity 1 is nearly as close but is a known fact.
        unfiltered = link_prediction_ranks(model, [(0, 0, 2)])
        filtered = link_prediction_ranks(model, [(0, 0, 2)],
                                         known_triples=[(0, 0, 1)])
        assert unfiltered[0] == 2
        assert filtered[0] == 1

    def test_predict_both_doubles_ranks(self):
        model = TransE(4, 1, 2, rng())
        ranks = link_prediction_ranks(model, [(0, 0, 1)], predict="both")
        assert len(ranks) == 2

    def test_predict_validation(self):
        model = TransE(4, 1, 2, rng())
        with pytest.raises(ValueError):
            link_prediction_ranks(model, [(0, 0, 1)], predict="nope")
