"""Tests for the three downstream tasks: datasets, models, experiments."""

import numpy as np
import pytest

from repro.service import RandomProvider, WordEmbeddingProvider
from repro.tasks.eap import EapExperiment, EapModel, build_eap_dataset
from repro.tasks.fct import FctExperiment, build_fct_dataset
from repro.tasks.rca import RcaExperiment, RcaModel, RcaState, build_rca_dataset
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=17, alarms_per_theme=3,
                                 kpis_per_theme=2, topology_nodes=10)


@pytest.fixture(scope="module")
def episodes(world):
    return world.simulate_episodes(30)


class TestRcaData:
    def test_states_built(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        assert len(dataset.states) > 10
        assert dataset.num_features == len(world.ontology.events)

    def test_root_node_has_events(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        for state in dataset.states:
            assert state.features[state.root_index].sum() > 0

    def test_normalized_adjacency_rows(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        norm = dataset.states[0].normalized_adjacency()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9  # spectral bound of sym-norm adj

    def test_describe_matches_table3_shape(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        stats = dataset.describe()
        assert set(stats) == {"graphs", "features", "avg_nodes", "avg_edges"}

    def test_state_validation(self):
        with pytest.raises(ValueError):
            RcaState(node_names=["a"], adjacency=np.zeros((2, 2)),
                     features=np.zeros((1, 3)), root_index=0)
        with pytest.raises(ValueError):
            RcaState(node_names=["a", "b"], adjacency=np.zeros((2, 2)),
                     features=np.zeros((2, 3)), root_index=5)


class TestRcaModel:
    def test_node_initialisation_averages(self):
        state = RcaState(node_names=["a", "b"],
                         adjacency=np.array([[0.0, 1.0], [1.0, 0.0]]),
                         features=np.array([[2.0, 0.0], [0.0, 0.0]]),
                         root_index=0)
        embeddings = np.array([[1.0, 1.0], [3.0, 3.0]])
        h = RcaModel.node_initialisation(state, embeddings)
        assert np.allclose(h[0], [1.0, 1.0])
        assert np.allclose(h[1], 0.0)

    def test_forward_scores_every_node(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        model = RcaModel(8, np.random.default_rng(0), gcn_hidden=8,
                         gcn_out=4, mlp_hidden=4)
        emb = np.random.default_rng(1).normal(
            size=(dataset.num_features, 8))
        scores = model(dataset.states[0], emb)
        assert scores.shape == (dataset.states[0].num_nodes,)

    def test_loss_decreases_with_training(self, world, episodes):
        from repro.nn.optim import Adam
        dataset = build_rca_dataset(world, episodes)
        model = RcaModel(8, np.random.default_rng(0), gcn_hidden=8,
                         gcn_out=4, mlp_hidden=4)
        emb = np.random.default_rng(1).normal(size=(dataset.num_features, 8))
        state = dataset.states[0]
        opt = Adam(model.parameters(), lr=1e-2)
        first = float(model.loss(state, emb).data)
        for _ in range(30):
            opt.zero_grad()
            loss = model.loss(state, emb)
            loss.backward()
            opt.step()
        assert float(model.loss(state, emb).data) < first


class TestRcaExperiment:
    def test_run_with_random_provider(self, world, episodes):
        dataset = build_rca_dataset(world, episodes)
        experiment = RcaExperiment(dataset, seed=0, num_folds=5, epochs=2,
                                   gcn_hidden=8, gcn_out=4, mlp_hidden=4)
        result = experiment.run(RandomProvider(dim=8, seed=0))
        assert result.metrics.mean_rank >= 1.0
        row = result.as_table_row()
        assert set(row) == {"MR", "Hits@1", "Hits@3", "Hits@5"}
        assert 0 <= row["Hits@1"] <= 100


class TestEapData:
    def test_balanced_pairs(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        stats = dataset.describe()
        assert stats["event_pairs_positive"] > 0
        # One negative is attempted per positive; allow small shortfalls.
        assert stats["event_pairs_negative"] >= \
            stats["event_pairs_positive"] * 0.8

    def test_positive_pairs_are_true_edges(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        for pair in dataset.pairs:
            if pair.label == 1:
                assert world.causal_graph.has_edge(pair.event_i, pair.event_j)

    def test_negative_pairs_are_not_edges_that_fired(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        positives = {(p.event_i, p.event_j)
                     for p in dataset.pairs if p.label == 1}
        for pair in dataset.pairs:
            if pair.label == 0:
                assert (pair.event_i, pair.event_j) not in positives

    def test_trigger_times_ordered_for_positives(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        ordered = sum(1 for p in dataset.pairs
                      if p.label == 1 and p.time_i <= p.time_j)
        total = sum(1 for p in dataset.pairs if p.label == 1)
        assert ordered / total > 0.95  # cause precedes effect


class TestEapModel:
    def test_forward_shape(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        model = EapModel(dataset, text_dim=8, rng=np.random.default_rng(0))
        pairs = dataset.pairs[:4]
        t = np.random.default_rng(1).normal(size=(4, 8))
        logits = model(pairs, t, t)
        assert logits.shape == (4, 2)

    def test_predict_binary(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        model = EapModel(dataset, text_dim=8, rng=np.random.default_rng(0))
        pairs = dataset.pairs[:4]
        t = np.random.default_rng(1).normal(size=(4, 8))
        preds = model.predict(pairs, t, t)
        assert set(np.unique(preds)).issubset({0, 1})


class TestEapExperiment:
    def test_run_with_word_embeddings(self, world, episodes):
        dataset = build_eap_dataset(world, episodes)
        experiment = EapExperiment(dataset, seed=0, epochs=2)
        result = experiment.run(WordEmbeddingProvider(dim=8, seed=0))
        row = result.as_table_row()
        assert set(row) == {"Accuracy", "Precision", "Recall", "F1-score"}
        assert 0 <= row["Accuracy"] <= 100


class TestFctData:
    def test_dataset_built(self, world, episodes):
        dataset = build_fct_dataset(world, episodes)
        stats = dataset.describe()
        assert stats["nodes"] > 2
        assert stats["train"] + stats["valid"] + stats["test"] > 0
        assert stats["test"] >= 1

    def test_held_out_hops_not_in_training_graph(self, world, episodes):
        dataset = build_fct_dataset(world, episodes)
        training = {(q.head, q.relation, q.tail) for q in dataset.quadruples}
        for triple in dataset.test + dataset.valid:
            assert triple not in training

    def test_confidences_in_unit_interval(self, world, episodes):
        dataset = build_fct_dataset(world, episodes)
        for quad in dataset.quadruples:
            assert 0.0 < quad.confidence <= 1.0

    def test_relations_are_ne_type_scoped(self, world, episodes):
        dataset = build_fct_dataset(world, episodes)
        ne_types = set(world.ontology.ne_types)
        for name in dataset.relation_names:
            assert name.startswith("into-")
            assert name.removeprefix("into-") in ne_types

    def test_mask_hop_first_mode(self, world, episodes):
        dataset = build_fct_dataset(world, episodes, mask_hop="first")
        assert dataset.describe()["test"] >= 1
        with pytest.raises(ValueError):
            build_fct_dataset(world, episodes, mask_hop="bogus")

    def test_no_chains_raises(self, world):
        with pytest.raises(ValueError):
            build_fct_dataset(world, [])


class TestFctExperiment:
    def test_run_with_random_provider(self, world, episodes):
        dataset = build_fct_dataset(world, episodes)
        experiment = FctExperiment(dataset, seed=0, epochs=5)
        result = experiment.run(RandomProvider(dim=16, seed=0))
        row = result.as_table_row()
        assert set(row) == {"MRR", "Hits@1", "Hits@3", "Hits@10"}
        assert 0 <= row["MRR"] <= 100


class TestRcaModelFactory:
    def test_gat_factory_runs(self, world, episodes):
        from repro.tasks.rca import GatRcaModel
        dataset = build_rca_dataset(world, episodes)
        experiment = RcaExperiment(
            dataset, seed=0, epochs=1,
            model_factory=lambda dim, rng: GatRcaModel(
                dim, rng, hidden=8, out=4, mlp_hidden=4))
        result = experiment.run(RandomProvider(dim=8, seed=0))
        assert result.metrics.mean_rank >= 1.0
