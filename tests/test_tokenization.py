"""Tests for vocabulary, BPE, tokenizer, and whole-word segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenization import (
    BpeCodec,
    Vocab,
    WholeWordSegmenter,
    WordTokenizer,
    basic_tokenize,
    learn_bpe,
    mine_special_tokens,
)
from repro.tokenization.vocab import CLS, SEP


class TestVocab:
    def test_core_specials_have_fixed_ids(self):
        v = Vocab()
        assert v.pad_id == 0
        assert v.unk_id == 1
        assert v.cls_id == 2
        assert v.sep_id == 3
        assert v.mask_id == 4

    def test_unknown_maps_to_unk(self):
        v = Vocab(["alarm"])
        assert v.token_to_id("nonexistent") == v.unk_id

    def test_roundtrip(self):
        v = Vocab(["alarm", "kpi"])
        ids = v.encode(["alarm", "kpi"])
        assert v.decode(ids) == ["alarm", "kpi"]

    def test_build_respects_min_freq(self):
        v = Vocab.build([["a", "a", "b"]], min_freq=2)
        assert "a" in v and "b" not in v

    def test_build_respects_max_size(self):
        sentences = [[f"tok{i}" for i in range(20)]]
        v = Vocab.build(sentences, max_size=10)
        assert len(v) == 10

    def test_add_special_tokens(self):
        v = Vocab()
        added = v.add_special_tokens(["[ALM]", "[KPI]"])
        assert added == 2
        assert v.is_special("[ALM]")
        assert v.token_to_id("[ALM]") in v.special_ids()

    def test_add_duplicate_token_is_noop(self):
        v = Vocab(["alarm"])
        assert v.add_tokens(["alarm"]) == 0

    def test_save_load_roundtrip(self, tmp_path):
        v = Vocab(["alarm"])
        v.add_special_tokens(["[ALM]"])
        path = tmp_path / "vocab.json"
        v.save(path)
        loaded = Vocab.load(path)
        assert len(loaded) == len(v)
        assert loaded.token_to_id("[ALM]") == v.token_to_id("[ALM]")
        assert loaded.is_special("[ALM]")


class TestBasicTokenize:
    def test_prompt_tokens_survive(self):
        tokens = basic_tokenize("[ALM] ALM-1001 | link failure")
        assert tokens[0] == "[ALM]"
        assert "|" in tokens

    def test_numbers_and_decimals(self):
        assert basic_tokenize("rate 0.95 count 42") == \
            ["rate", "0.95", "count", "42"]

    def test_hyphenated_jargon_kept_whole(self):
        assert "ALM-1001" in basic_tokenize("[ALM] ALM-1001")

    def test_lowercase_preserves_brackets(self):
        tokens = basic_tokenize("[KPI] Session Rate", lowercase=True)
        assert tokens == ["[KPI]", "session", "rate"]

    def test_punctuation_split(self):
        assert basic_tokenize("a,b") == ["a", ",", "b"]

    def test_empty(self):
        assert basic_tokenize("") == []


class TestBpe:
    WORDS = ["network"] * 30 + ["net"] * 5 + ["work"] * 5 + ["nf"] * 20

    def test_learn_produces_merges(self):
        merges = learn_bpe(self.WORDS, num_merges=10)
        assert merges
        assert all(isinstance(m, tuple) and len(m) == 2 for m in merges)

    def test_segment_frequent_word_merges_fully(self):
        merges = learn_bpe(self.WORDS, num_merges=50)
        codec = BpeCodec(merges)
        assert codec.segment("network") == ["network"]

    def test_segment_unseen_word_falls_back_to_chars(self):
        codec = BpeCodec([])
        assert codec.segment("xyz") == ["x", "y", "z"]

    def test_deterministic(self):
        m1 = learn_bpe(self.WORDS, num_merges=20)
        m2 = learn_bpe(self.WORDS, num_merges=20)
        assert m1 == m2

    def test_mine_special_tokens_filters(self):
        sentences = [["PGW", "handles", "sessions"]] * 20 + \
                    [["MME", "pages", "devices"]] * 20 + \
                    [["the", "verylongtokenname", "x"]] * 20
        mined = mine_special_tokens(sentences, base_vocabulary={"the", "x"},
                                    min_frequency=10, num_merges=200)
        assert "PGW" in mined
        assert "MME" in mined
        assert "verylongtokenname" not in mined  # too long
        assert "the" not in mined                # in base vocab
        assert "x" not in mined                  # too short

    def test_mine_respects_frequency(self):
        sentences = [["RAN"]] * 3
        mined = mine_special_tokens(sentences, base_vocabulary=set(),
                                    min_frequency=10)
        assert "RAN" not in mined


class TestWordTokenizer:
    def _tok(self):
        corpus = ["alarm link failure", "kpi session rate drop",
                  "alarm session drop"]
        return WordTokenizer.from_corpus(corpus, max_length=16)

    def test_encode_wraps_with_cls_sep(self):
        tok = self._tok()
        enc = tok.encode("alarm link failure")
        assert enc.tokens[0] == CLS
        assert enc.tokens[-1] == SEP
        assert len(enc.ids) == 5

    def test_truncation(self):
        tok = WordTokenizer.from_corpus(["a b c d e f g"], max_length=5)
        enc = tok.encode("a b c d e f g")
        assert len(enc.ids) == 5
        assert enc.tokens[-1] == SEP

    def test_batch_padding(self):
        tok = self._tok()
        ids, mask = tok.encode_batch(["alarm", "alarm link failure"])
        assert ids.shape == mask.shape
        assert mask[0].sum() == 3
        assert mask[1].sum() == 5
        assert (ids[0][mask[0] == 0] == tok.vocab.pad_id).all()

    def test_batch_pad_to_fixed(self):
        tok = self._tok()
        ids, _ = tok.encode_batch(["alarm"], pad_to=10)
        assert ids.shape == (1, 10)

    def test_decode_skips_special(self):
        tok = self._tok()
        enc = tok.encode("alarm link failure")
        assert tok.decode(enc.ids) == "alarm link failure"

    def test_oov_becomes_unk(self):
        tok = self._tok()
        enc = tok.encode("unseenword")
        assert tok.vocab.unk_id in enc.ids

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            WordTokenizer(Vocab(), max_length=2)


class TestWholeWordSegmenter:
    def test_multiword_phrase_grouped(self):
        seg = WholeWordSegmenter([["network", "congestion", "points"]])
        tokens = ["the", "network", "congestion", "points", "rose"]
        groups = seg.segment(tokens)
        assert [1, 2, 3] in groups
        assert [0] in groups and [4] in groups

    def test_longest_match_wins(self):
        seg = WholeWordSegmenter([["a", "b"], ["a", "b", "c"]])
        groups = seg.segment(["a", "b", "c"])
        assert groups == [[0, 1, 2]]

    def test_covers_all_indices_in_order(self):
        seg = WholeWordSegmenter([["x", "y"]])
        tokens = ["x", "y", "z", "x"]
        flat = [i for g in seg.segment(tokens) for i in g]
        assert flat == list(range(len(tokens)))

    def test_from_strings(self):
        seg = WholeWordSegmenter.from_strings(["dedicated control channel"])
        assert ["dedicated", "control", "channel"] in [
            ["dedicated", "control", "channel"]] and len(seg) == 1
        groups = seg.segment(["dedicated", "control", "channel"])
        assert groups == [[0, 1, 2]]

    def test_empty_phrase_raises(self):
        with pytest.raises(ValueError):
            WholeWordSegmenter([[]])

    def test_no_phrases_all_singletons(self):
        seg = WholeWordSegmenter()
        assert seg.segment(["a", "b"]) == [[0], [1]]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["alarm", "kpi", "link", "NF", "0.5", "|"]),
                min_size=1, max_size=20))
def test_tokenizer_roundtrip_known_tokens(words):
    text = " ".join(words)
    tok = WordTokenizer.from_corpus([text, "alarm kpi link NF 0.5 |"],
                                    max_length=64)
    enc = tok.encode(text)
    # Every non-special encoded token should decode back to the source word.
    body = [t for t in enc.tokens if t not in (CLS, SEP)]
    assert body == basic_tokenize(text)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=10))
def test_bpe_segment_reconstructs_word(chars):
    word = "".join(chars)
    merges = learn_bpe([word] * 5 + ["abc"] * 3, num_merges=20)
    codec = BpeCodec(merges)
    assert "".join(codec.segment(word)) == word
