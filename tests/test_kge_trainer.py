"""Tests for the generic KGE training harness."""

import numpy as np
import pytest

from repro.kge import (
    GTransE,
    KgeTrainer,
    TransE,
    UncertainTriple,
    build_kge_model,
    link_prediction_ranks,
)


def _chain_triples(n=8):
    return [(i, 0, i + 1) for i in range(n - 1)]


def _uncertain_chain(n=8):
    return [UncertainTriple(i, 0, i + 1, confidence=0.9)
            for i in range(n - 1)]


class TestKgeTrainer:
    def test_empty_triples_raises(self):
        model = TransE(4, 1, 8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            KgeTrainer(model, [], 4, np.random.default_rng(0))

    def test_loss_decreases_over_epochs(self):
        triples = _chain_triples()
        model = TransE(8, 1, 16, np.random.default_rng(0))
        trainer = KgeTrainer(model, triples, 8, np.random.default_rng(1),
                             learning_rate=0.05)
        log = trainer.fit(epochs=25)
        assert np.mean(log.loss[-5:]) < np.mean(log.loss[:5])

    def test_fit_improves_ranks(self):
        triples = _chain_triples()
        model = TransE(8, 1, 16, np.random.default_rng(0))
        before = np.mean(link_prediction_ranks(model, triples,
                                               known_triples=triples))
        trainer = KgeTrainer(model, triples, 8, np.random.default_rng(1),
                             learning_rate=0.05)
        trainer.fit(epochs=40)
        after = np.mean(link_prediction_ranks(model, triples,
                                              known_triples=triples))
        assert after < before

    def test_uncertain_triples_use_confidence_loss(self):
        triples = _uncertain_chain()
        model = GTransE(8, 1, 16, np.random.default_rng(0))
        trainer = KgeTrainer(model, triples, 8, np.random.default_rng(1))
        assert trainer.uncertain
        loss = trainer.train_epoch()
        assert np.isfinite(loss)

    def test_validation_selection_restores_best(self):
        triples = _chain_triples()
        valid = triples[:2]
        model = TransE(8, 1, 16, np.random.default_rng(0))
        trainer = KgeTrainer(model, triples, 8, np.random.default_rng(1),
                             learning_rate=0.05)
        log = trainer.fit(epochs=10, valid_triples=valid, validate_every=2)
        assert log.valid_mrr  # validation happened
        assert all(0.0 <= v <= 1.0 for v in log.valid_mrr)

    def test_negatives_avoid_known_facts(self):
        triples = _chain_triples(5)
        model = TransE(5, 1, 8, np.random.default_rng(0))
        trainer = KgeTrainer(model, triples, 5, np.random.default_rng(2))
        known = set(triples)
        for triple in triples:
            for _ in range(20):
                corrupted = trainer._corrupt(triple)
                assert corrupted not in known or \
                    corrupted == (triple[0], triple[1],
                                  (triple[2] + 1) % 5)  # fallback branch

    def test_works_with_every_registered_model(self):
        triples = _chain_triples(5)
        for name in ("transh", "distmult", "complex", "rotate"):
            model = build_kge_model(name, 5, 1, 8, np.random.default_rng(0))
            trainer = KgeTrainer(model, triples, 5, np.random.default_rng(1))
            assert np.isfinite(trainer.train_epoch())
