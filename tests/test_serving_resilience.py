"""Fault-injection tests: the serving stack under hung/flaky encoders.

Regression suite for the hang-deadlock bug class: a provider that blocks
forever used to wedge ``MicroBatcher.encode`` (unbounded ``Event.wait``),
permanently consume retry-pool threads (≤8 hung requests deadlocked every
subsequent call), and block interpreter exit through the executor's
non-daemon threads.  Every test here runs under the hard
``@pytest.mark.timeout`` watchdog (tests/conftest.py) so a reintroduced
deadlock fails CI instead of hanging it.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    CancellableWorkerPool,
    CancellationToken,
    CancelledError,
    Deadline,
    DeadlineExceeded,
    EmbeddingStore,
    FaultAnalysisService,
    FlushTimeout,
    MetricsRegistry,
    MicroBatcher,
    PersistentProvider,
    ServiceConfig,
    ServingError,
)
from repro.service import RandomProvider


# ----------------------------------------------------------------------
# Fault-injection providers
# ----------------------------------------------------------------------
class HangingProvider(RandomProvider):
    """Every encode blocks until :meth:`release` — a wedged encoder."""

    label = "Hanging"

    def __init__(self, dim=8):
        super().__init__(dim=dim, seed=0)
        self._release = threading.Event()
        self._lock = threading.Lock()
        self.started = 0
        self.finished = 0

    def blocked(self) -> int:
        """Threads currently stuck inside :meth:`encode_names`."""
        with self._lock:
            return self.started - self.finished

    def release(self) -> None:
        """Unwedge: every blocked (and future) call completes."""
        self._release.set()

    def encode_names(self, names):
        with self._lock:
            self.started += 1
        self._release.wait()
        with self._lock:
            self.finished += 1
        return super().encode_names(names)


class FlakyProvider(RandomProvider):
    """Hangs for the first ``hangs`` calls, then answers instantly."""

    label = "Flaky"

    def __init__(self, dim=8, hangs=1):
        super().__init__(dim=dim, seed=0)
        self.hangs = hangs
        self._release = threading.Event()
        self._lock = threading.Lock()
        self.calls = 0

    def release(self) -> None:
        self._release.set()

    def encode_names(self, names):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call <= self.hangs:
            self._release.wait()
        return super().encode_names(names)


def _tight_config(**overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=2, timeout_s=0.3,
                    max_retries=1, backoff_s=0.01, close_timeout_s=5.0,
                    max_workers=4)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _swallow(fn, *args, **kwargs):
    """Run ``fn`` ignoring its outcome — for background wedge threads
    whose success/failure depends on when teardown releases the provider."""
    try:
        fn(*args, **kwargs)
    except Exception:
        pass


def _poll(predicate, timeout=5.0, interval=0.01) -> bool:
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Deadline / token primitives
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_and_expiry(self):
        deadline = Deadline.after(0.05)
        assert 0.0 < deadline.remaining() <= 0.05
        assert not deadline.expired()
        time.sleep(0.06)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")

    def test_never(self):
        deadline = Deadline.never()
        assert not deadline.expired()
        assert deadline.wait_timeout() is None
        deadline.check()  # never raises

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_token(self):
        token = CancellationToken()
        assert not token.cancelled
        token.raise_if_cancelled()
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(CancelledError):
            token.raise_if_cancelled()


# ----------------------------------------------------------------------
# Cancellable worker pool
# ----------------------------------------------------------------------
class TestCancellableWorkerPool:
    @pytest.mark.timeout(30)
    def test_submit_result_and_error(self):
        with CancellableWorkerPool(max_workers=2) as pool:
            job = pool.submit(lambda: 41 + 1)
            assert job.wait(5.0)
            assert job.result() == 42
            failing = pool.submit(lambda: 1 / 0)
            assert failing.wait(5.0)
            with pytest.raises(ZeroDivisionError):
                failing.result()

    @pytest.mark.timeout(30)
    def test_abandon_before_start_skips_job(self):
        blocker = threading.Event()
        with CancellableWorkerPool(max_workers=1) as pool:
            running = pool.submit(blocker.wait)
            queued = pool.submit(lambda: "never runs")
            pool.abandon(queued)           # cancelled while still queued
            blocker.set()
            assert queued.wait(5.0)
            with pytest.raises(CancelledError):
                queued.result()
            assert running.wait(5.0)
            assert pool.metrics.counter("serving.pool.skipped").value == 1
            assert pool.stats()["hung"] == 0   # nothing actually hung

    @pytest.mark.timeout(30)
    def test_hung_worker_is_replaced_then_retired(self):
        blocker = threading.Event()
        pool = CancellableWorkerPool(max_workers=2)
        try:
            stuck = pool.submit(blocker.wait)
            assert _poll(lambda: stuck.started)
            pool.abandon(stuck)
            stats = pool.stats()
            assert stats["hung"] == 1
            assert stats["alive"] == 3     # replacement spawned
            assert pool.metrics.gauge(
                "serving.pool.hung_threads").value == 1
            # Capacity is intact: both regular workers still serve.
            jobs = [pool.submit(lambda i=i: i) for i in range(4)]
            for i, job in enumerate(jobs):
                assert job.wait(5.0) and job.result() == i
            # The stuck call recovers: gauge drops, surplus retires.
            blocker.set()
            assert _poll(lambda: pool.stats()["hung"] == 0)
            assert _poll(lambda: pool.stats()["alive"] == 2)
            assert pool.metrics.counter(
                "serving.pool.recovered").value == 1
        finally:
            blocker.set()
            pool.shutdown()

    @pytest.mark.timeout(30)
    def test_total_thread_cap_bounds_the_leak(self):
        blocker = threading.Event()
        pool = CancellableWorkerPool(max_workers=2, max_total_threads=4)
        try:
            for _ in range(8):   # far more hangs than the cap
                job = pool.submit(blocker.wait)
                # Once every thread up to the cap is hung, later jobs
                # queue without starting — that is the bounded-leak
                # contract, so the poll is best-effort.
                _poll(lambda: job.started or job.done.is_set(), timeout=0.5)
                pool.abandon(job)
            assert pool.stats()["alive"] <= 4
        finally:
            blocker.set()
            pool.shutdown()

    def test_shutdown_rejects_new_work(self):
        pool = CancellableWorkerPool(max_workers=1)
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)


# ----------------------------------------------------------------------
# Micro-batcher under hung flushes
# ----------------------------------------------------------------------
class TestBatcherDeadlines:
    @pytest.mark.timeout(30)
    def test_encode_deadline_deregisters_waiter(self):
        provider = HangingProvider(dim=4)
        metrics = MetricsRegistry()
        batcher = MicroBatcher(provider, max_batch_size=8, max_wait_ms=2,
                               flush_timeout_s=10.0, metrics=metrics)
        try:
            # First name wedges the worker inside a flush...  (Outcome
            # irrelevant: it completes once teardown releases the provider.)
            first = threading.Thread(
                target=lambda: _swallow(batcher.encode, ["wedge"]),
                daemon=True)
            first.start()
            assert _poll(lambda: provider.blocked() == 1)
            # ...so this name stays queued; its waiter times out and must
            # deregister, leaving the queue empty.
            with pytest.raises(DeadlineExceeded):
                batcher.encode(["queued"], deadline=Deadline.after(0.1))
            assert batcher.stats()["pending"] == 0
            assert metrics.counter("serving.abandoned_waits").value >= 1
            assert metrics.counter(
                "serving.batcher.dropped_names").value >= 1
        finally:
            provider.release()
            batcher.close(timeout=5.0)

    @pytest.mark.timeout(30)
    def test_flush_watchdog_fails_entries_with_flush_timeout(self):
        provider = HangingProvider(dim=4)
        metrics = MetricsRegistry()
        batcher = MicroBatcher(provider, max_batch_size=8, max_wait_ms=2,
                               flush_timeout_s=0.1, metrics=metrics)
        try:
            start = time.monotonic()
            with pytest.raises(FlushTimeout):
                batcher.encode(["a", "b"])
            assert time.monotonic() - start < 5.0
            assert metrics.counter("serving.hung_flushes").value == 1
            assert batcher.stats()["hung_flush_threads"] == 1
            # The hung thread recovering brings the gauge back down and
            # its late result is discarded.
            provider.release()
            assert _poll(
                lambda: batcher.stats()["hung_flush_threads"] == 0)
            assert metrics.counter(
                "serving.batcher.recovered_flushes").value == 1
        finally:
            provider.release()
            batcher.close(timeout=5.0)

    @pytest.mark.timeout(30)
    def test_worker_survives_hung_flush_and_serves_next_batch(self):
        provider = FlakyProvider(dim=4, hangs=1)
        batcher = MicroBatcher(provider, max_batch_size=8, max_wait_ms=2,
                               flush_timeout_s=0.1)
        try:
            with pytest.raises(FlushTimeout):
                batcher.encode(["first"])
            out = batcher.encode(["second"])   # fresh flush, new thread
            assert out.shape == (1, 4)
            assert provider.calls == 2
        finally:
            provider.release()
            batcher.close(timeout=5.0)

    @pytest.mark.timeout(30)
    def test_shared_entry_survives_partial_abandon(self):
        provider = HangingProvider(dim=4)
        batcher = MicroBatcher(provider, max_batch_size=8, max_wait_ms=2,
                               flush_timeout_s=10.0)
        try:
            wedge = threading.Thread(
                target=lambda: _swallow(batcher.encode, ["wedge"]),
                daemon=True)
            wedge.start()
            assert _poll(lambda: provider.blocked() == 1)
            results = {}

            def patient():
                results["out"] = batcher.encode(["shared"])

            waiter = threading.Thread(target=patient, daemon=True)
            waiter.start()
            time.sleep(0.05)
            # The impatient caller abandons; the entry must survive for
            # the patient one (still registered).
            with pytest.raises(DeadlineExceeded):
                batcher.encode(["shared"], deadline=Deadline.after(0.05))
            assert batcher.stats()["pending"] == 1
            provider.release()
            waiter.join(timeout=5.0)
            assert results["out"].shape == (1, 4)
        finally:
            provider.release()
            batcher.close(timeout=5.0)

    @pytest.mark.timeout(30)
    def test_circuit_breaker_caps_hung_flush_threads(self):
        provider = HangingProvider(dim=4)
        metrics = MetricsRegistry()
        batcher = MicroBatcher(provider, max_batch_size=8, max_wait_ms=2,
                               flush_timeout_s=0.05, max_hung_flushes=2,
                               metrics=metrics)
        try:
            for _ in range(6):
                with pytest.raises(FlushTimeout):
                    batcher.encode(["x"])
            # Only the first two flushes reached the provider; the rest
            # failed fast without stacking more hung threads.
            assert provider.blocked() == 2
            assert batcher.stats()["hung_flush_threads"] == 2
            assert metrics.counter(
                "serving.batcher.fast_fails").value == 4
        finally:
            provider.release()
            batcher.close(timeout=5.0)


# ----------------------------------------------------------------------
# Deadlock regression: the façade under a permanently hung primary
# ----------------------------------------------------------------------
class TestServiceUnderHungPrimary:
    @pytest.mark.timeout(60)
    def test_fallback_answers_within_budget(self):
        provider = HangingProvider(dim=8)
        fallback = RandomProvider(dim=8, seed=1)
        config = _tight_config()
        try:
            with FaultAnalysisService(provider, fallback=fallback,
                                      config=config) as service:
                start = time.monotonic()
                out = service.embed(["link failure"])
                elapsed = time.monotonic() - start
                assert out.shape == (1, 8)
                # Acceptance bound: timeout_s x attempts plus backoff
                # slack (and watchdog/scheduling grace).
                assert elapsed < config.total_budget_s() + 1.0
                assert service.metrics.counter(
                    "serving.fallbacks").value == 1
                assert service.metrics.counter(
                    "serving.timeouts").value >= 1
        finally:
            provider.release()

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("concurrent", [False, True])
    def test_blocked_threads_bounded_across_many_requests(self, concurrent):
        """≥3x max_workers hung requests must not accumulate blocked
        pool threads — the historical deadlock had 8 wedge everything."""
        provider = HangingProvider(dim=8)
        fallback = RandomProvider(dim=8, seed=1)
        config = _tight_config(timeout_s=0.15, max_retries=1,
                               max_workers=4, max_hung_flushes=2)
        requests = 3 * config.max_workers
        try:
            with FaultAnalysisService(provider, fallback=fallback,
                                      config=config) as service:
                if concurrent:
                    threads = [
                        threading.Thread(
                            target=service.embed, args=([f"n{i}"],),
                            daemon=True)
                        for i in range(requests)]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=30.0)
                    assert not any(t.is_alive() for t in threads)
                else:
                    for i in range(requests):
                        out = service.embed([f"n{i}"])
                        assert out.shape == (1, 8)
                pool = service.stats()["pool"]
                # Pool threads wait cooperatively — none may be written
                # off as hung, and capacity must not have ballooned.
                assert pool["hung"] == 0
                assert pool["alive"] <= pool["max_total_threads"]
                # The provider-side leak is capped by the breaker.
                assert provider.blocked() <= config.max_hung_flushes
                assert service.metrics.counter(
                    "serving.fallbacks").value == requests
        finally:
            provider.release()

    @pytest.mark.timeout(30)
    def test_close_bounded_with_hung_provider(self):
        provider = HangingProvider(dim=8)
        service = FaultAnalysisService(
            provider, fallback=RandomProvider(dim=8, seed=1),
            config=_tight_config(timeout_s=0.1))
        try:
            service.embed(["a"])           # wedges one flush
            start = time.monotonic()
            service.close()
            assert time.monotonic() - start < 5.0
            service.close()                # idempotent
        finally:
            provider.release()

    @pytest.mark.timeout(30)
    def test_no_fallback_raises_typed_cause(self):
        provider = HangingProvider(dim=8)
        try:
            with FaultAnalysisService(
                    provider,
                    config=_tight_config(timeout_s=0.1,
                                         max_retries=0)) as service:
                with pytest.raises(ServingError) as excinfo:
                    service.embed(["a"])
                assert isinstance(excinfo.value.__cause__,
                                  (DeadlineExceeded, FlushTimeout))
        finally:
            provider.release()

    @pytest.mark.timeout(60)
    def test_flaky_primary_recovers_via_retry(self):
        provider = FlakyProvider(dim=8, hangs=1)
        fallback = RandomProvider(dim=8, seed=1)
        config = _tight_config(timeout_s=0.2, max_retries=2)
        try:
            with FaultAnalysisService(provider, fallback=fallback,
                                      config=config) as service:
                out = service.embed(["a"])
                assert out.shape == (1, 8)
                # Answered by the recovered primary, not the fallback.
                assert service.metrics.counter(
                    "serving.fallbacks").value == 0
                assert service.metrics.counter(
                    "serving.retries").value >= 1
                assert provider.calls >= 2
        finally:
            provider.release()

    @pytest.mark.timeout(60)
    def test_process_exit_completes_with_wedged_provider(self):
        """A wedged encoder must not block interpreter exit (the old
        non-daemon executor threads did)."""
        script = """
import threading, numpy as np, time
from repro.serving import FaultAnalysisService, ServiceConfig
from repro.service import RandomProvider

class Wedged(RandomProvider):
    label = "Wedged"
    def encode_names(self, names):
        threading.Event().wait()   # hangs forever

config = ServiceConfig(max_wait_ms=2, timeout_s=0.1, max_retries=1,
                       backoff_s=0.01, close_timeout_s=2.0)
service = FaultAnalysisService(Wedged(dim=4, seed=0),
                               fallback=RandomProvider(dim=4, seed=1),
                               config=config)
out = service.embed(["a"])
assert out.shape == (1, 4)
service.close()
print("EXITED-CLEANLY")
"""
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, timeout=30)
        assert result.returncode == 0, result.stderr
        assert "EXITED-CLEANLY" in result.stdout

    @pytest.mark.timeout(30)
    def test_deadline_remaining_histogram_recorded(self):
        with FaultAnalysisService(RandomProvider(dim=4, seed=0),
                                  config=_tight_config()) as service:
            service.embed(["a"])
            histogram = service.metrics.histogram(
                "serving.deadline_remaining")
            assert histogram.count == 1
            assert histogram.percentile(50) > 0.0


# ----------------------------------------------------------------------
# Store durability under crashes and torn records
# ----------------------------------------------------------------------
class TestStoreDurability:
    def test_compact_crash_leaves_previous_log_intact(self, tmp_path,
                                                      monkeypatch):
        store = EmbeddingStore(tmp_path, fingerprint="f1")
        store.put_many({f"n{i}": np.full(2, float(i)) for i in range(4)})
        before = (tmp_path / "embeddings.jsonl").read_bytes()

        import contextlib

        import repro.serving.store as store_mod

        real_writer = store_mod.atomic_writer

        class _DyingHandle:
            """Write proxy that dies mid-stream (disk full, yanked mount)."""

            def __init__(self, inner):
                self._inner = inner
                self._writes = 0

            def write(self, data):
                self._writes += 1
                if self._writes > 1:
                    raise OSError("simulated crash mid-compaction")
                return self._inner.write(data)

        @contextlib.contextmanager
        def dying_writer(path):
            with real_writer(path) as handle:
                yield _DyingHandle(handle)

        monkeypatch.setattr(store_mod, "atomic_writer", dying_writer)
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.undo()
        # The log is byte-identical and a fresh store still serves it:
        # the aborted temp stream never replaced it.
        assert (tmp_path / "embeddings.jsonl").read_bytes() == before
        reloaded = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(reloaded.get("n3"), 3.0)

    def test_compact_leaves_no_temp_files(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="new")
        EmbeddingStore(tmp_path, fingerprint="old").put_many(
            {"stale": np.zeros(2)})
        store.put_many({"keep": np.ones(2)})
        assert store.compact() == 1
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "embeddings.jsonl"]
        assert leftovers == []
        assert np.allclose(
            EmbeddingStore(tmp_path, fingerprint="new").get("keep"), 1.0)

    def test_torn_record_degrades_to_miss(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1")
        store.put_many({"a": np.ones(2), "b": np.zeros(2)})
        reader = EmbeddingStore(tmp_path, fingerprint="f1",
                                lru_capacity=1)
        reader.get("a")                      # evicts nothing yet
        # Truncate mid-way through the *last* record under the reader.
        path = tmp_path / "embeddings.jsonl"
        path.write_bytes(path.read_bytes()[:-10])
        reader._lru.clear()                  # force both reads to disk
        assert reader.get("b") is None       # torn -> miss, no raise
        assert reader.stats()["misses"] >= 1
        # The offset is forgotten: the name can be re-written and served.
        reader.put_many({"b": np.full(2, 7.0)})
        assert np.allclose(reader.get("b"), 7.0)

    def test_compact_drops_torn_records(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1")
        store.put_many({"a": np.ones(2), "b": np.zeros(2)})
        path = tmp_path / "embeddings.jsonl"
        path.write_bytes(path.read_bytes()[:-10])
        store._lru.clear()
        assert store.compact() == 1          # only the intact record
        assert np.allclose(store.get("a"), 1.0)


# ----------------------------------------------------------------------
# PersistentProvider: slow encodes must not serialize cache hits
# ----------------------------------------------------------------------
class TestPersistentProviderConcurrency:
    @pytest.mark.timeout(30)
    def test_warm_reads_bypass_a_slow_encode(self, tmp_path):
        class SlowProvider(RandomProvider):
            label = "Slow"

            def __init__(self, dim=4):
                super().__init__(dim=dim, seed=0)
                self.entered = threading.Event()
                self.release = threading.Event()

            def encode_names(self, names):
                self.entered.set()
                self.release.wait(10.0)
                return super().encode_names(names)

        slow = SlowProvider()
        store = EmbeddingStore(tmp_path, fingerprint="f1", label="Slow")
        store.put_many({"hot": np.ones(4)})
        provider = PersistentProvider(slow, store)

        cold_result = {}

        def cold_path():
            cold_result["out"] = provider.encode_names(["cold"])

        thread = threading.Thread(target=cold_path, daemon=True)
        thread.start()
        assert slow.entered.wait(5.0)
        # While the encode is in flight, a warm hit must answer fast.
        start = time.monotonic()
        out = provider.encode_names(["hot"])
        elapsed = time.monotonic() - start
        assert np.allclose(out, 1.0)
        assert elapsed < 1.0
        slow.release.set()
        thread.join(timeout=5.0)
        assert cold_result["out"].shape == (1, 4)

    @pytest.mark.timeout(30)
    def test_racing_encodes_of_one_name_stay_consistent(self, tmp_path):
        provider = PersistentProvider(
            RandomProvider(dim=4, seed=0),
            EmbeddingStore(tmp_path, fingerprint="f1"))
        outputs = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            outputs.append(provider.encode_names(["dup", "dup"]))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(outputs) == 4
        for out in outputs:
            # Duplicate names within one request share one vector.
            assert np.allclose(out[0], out[1])
        # Racing encodes of the same cold name follow last-write-wins:
        # callers may transiently observe different vectors, but the store
        # converges — every later read returns one stored vector, and it
        # matches what one of the racers saw.
        settled = provider.encode_names(["dup"])[0]
        assert np.allclose(provider.encode_names(["dup"])[0], settled)
        assert any(np.allclose(out[0], settled) for out in outputs)
