"""Tests for the future-work extensions: signaling flows, configuration data,
QA/maintenance corpus enrichment, and their stage-2 integration."""

import numpy as np
import pytest

from repro.corpus import (
    build_tele_corpus,
    enrich_corpus_sentences,
    generate_maintenance_cases,
    generate_parameter_descriptions,
    generate_qa_pairs,
)
from repro.prompts import wrap_config, wrap_signaling
from repro.world import (
    ConfigurationGenerator,
    PARAMETER_CATALOG,
    PROCEDURES,
    SignalingSimulator,
    TelecomWorld,
)


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=31, alarms_per_theme=3,
                                 kpis_per_theme=2, topology_nodes=8)


@pytest.fixture(scope="module")
def episodes(world):
    return world.simulate_episodes(6)


class TestSignaling:
    def test_procedures_reference_valid_ne_types(self):
        from repro.world.ontology import NE_TYPES
        for spec in PROCEDURES.values():
            for _, src, dst, iface in spec["steps"]:
                assert src in NE_TYPES and dst in NE_TYPES
                assert iface in NE_TYPES[src] or iface in NE_TYPES[dst]

    def test_healthy_flow_completes(self, world):
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        flow = sim.simulate_flow("paging", 0.0, disturbed=False)
        assert flow.completed
        assert len(flow) == len(PROCEDURES["paging"]["steps"])
        assert all(r.status == "ok" for r in flow.records)

    def test_disturbed_flow_aborts_with_failure(self, world):
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        flow = sim.simulate_flow("initial registration", 0.0, disturbed=True)
        assert not flow.completed
        assert flow.records[-1].status in ("timeout", "reject")

    def test_unknown_procedure_raises(self, world):
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        with pytest.raises(KeyError):
            sim.simulate_flow("nonexistent", 0.0, disturbed=False)

    def test_episode_themes_detected(self, world, episodes):
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        events = {e.uid: e for e in world.ontology.events}
        for episode in episodes:
            themes = sim.episode_themes(episode)
            assert events[episode.root_uid].theme in themes

    def test_related_procedures_get_disturbed(self, world, episodes):
        """Theme-related procedures must abort sometimes; unrelated never."""
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        saw_related = False
        saw_aborted = False
        # Repeat the simulation a few times: per-flow disturbance is
        # stochastic (p = 0.8).
        for _ in range(5):
            for episode in episodes:
                flows = sim.simulate_episode(episode)
                themes = sim.episode_themes(episode)
                for flow in flows:
                    related = bool(
                        themes & set(PROCEDURES[flow.procedure]["themes"]))
                    if not related:
                        assert flow.completed
                    else:
                        saw_related = True
                        if not flow.completed:
                            saw_aborted = True
        assert saw_aborted or not saw_related

    def test_timestamps_increase_within_flow(self, world):
        sim = SignalingSimulator(world.ontology, np.random.default_rng(1))
        flow = sim.simulate_flow("pdu session establishment", 5.0,
                                 disturbed=False)
        times = [r.timestamp for r in flow.records]
        assert times == sorted(times)
        assert times[0] > 5.0


class TestConfiguration:
    def test_snapshot_covers_all_nodes_and_parameters(self, world):
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(0))
        records = gen.snapshot()
        assert len(records) == world.topology.num_nodes * len(PARAMETER_CATALOG)
        assert all(r.consistent for r in records)

    def test_numeric_values_in_range_when_consistent(self, world):
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(0))
        for record in gen.snapshot():
            if record.is_numeric:
                low, high = PARAMETER_CATALOG[record.parameter][1]
                assert low <= record.value <= high

    def test_faulty_node_gets_corruptions(self, world, episodes):
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(0))
        episode = episodes[0]
        records = gen.snapshot_for_episode(episode, corruption_probability=1.0)
        faulty = [r for r in records if r.node == episode.root_node]
        assert all(not r.consistent for r in faulty)
        others = [r for r in records if r.node != episode.root_node]
        assert all(r.consistent for r in others)

    def test_corrupted_numeric_out_of_range(self, world):
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(0))
        node = world.topology.nodes[0]
        records = gen.snapshot(faulty_nodes={node}, corruption_probability=1.0)
        for record in records:
            if record.node == node and record.is_numeric:
                low, high = PARAMETER_CATALOG[record.parameter][1]
                assert record.value < low or record.value > high

    def test_corrupted_enum_invalid(self, world):
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(0))
        node = world.topology.nodes[0]
        records = gen.snapshot(faulty_nodes={node}, corruption_probability=1.0)
        for record in records:
            if record.node == node and record.kind == "enum":
                assert str(record.value).startswith("invalid-")


class TestExtensionPrompts:
    def test_wrap_signaling(self):
        out = wrap_signaling("paging", "Paging from AMF to gNodeB over N2 ok")
        assert out.startswith("[SIG] paging |")

    def test_wrap_config_numeric(self):
        out = wrap_config("SMF-01", "max session count", 1234.0, "numeric")
        assert out.startswith("[CFG] max session count")
        assert "[NUM] 1234" in out
        assert "[LOC] SMF-01" in out

    def test_wrap_config_enum(self):
        out = wrap_config("SMF-01", "cipher suite", "aes-256", "enum")
        assert "[NUM]" not in out
        assert "aes-256" in out


class TestQaCorpus:
    def test_qa_pairs_generated(self, world):
        sentences = generate_qa_pairs(world, seed=0)
        assert len(sentences) == 2 * len(world.ontology.alarms)
        assert any(s.endswith("?") for s in sentences)

    def test_parameter_descriptions(self):
        sentences = generate_parameter_descriptions(seed=0)
        assert len(sentences) == 2 * len(PARAMETER_CATALOG)
        assert all(any(p in s for p in PARAMETER_CATALOG)
                   for s in sentences)

    def test_maintenance_cases_mention_alarms(self, world):
        sentences = generate_maintenance_cases(world, seed=0)
        assert len(sentences) == len(world.ontology.alarms)

    def test_enrichment_expands_corpus(self, world):
        lean = build_tele_corpus(world, seed=0, include_qa_and_cases=False)
        rich = build_tele_corpus(world, seed=0, include_qa_and_cases=True)
        assert len(rich) > len(lean)

    def test_deterministic(self, world):
        assert enrich_corpus_sentences(world, seed=4) == \
            enrich_corpus_sentences(world, seed=4)


class TestStage2Integration:
    def test_signaling_and_config_rows_included(self, world, episodes):
        from repro.corpus import build_tele_corpus
        from repro.kg import build_tele_kg
        from repro.models.ktelebert import NumericRow
        from repro.training.stage2 import build_stage2_data

        corpus = build_tele_corpus(world, seed=0)
        kg = build_tele_kg(world)
        sim = SignalingSimulator(world.ontology, np.random.default_rng(0))
        flows = [f for e in episodes for f in sim.simulate_episode(e)]
        gen = ConfigurationGenerator(world.topology, np.random.default_rng(1))
        configs = gen.snapshot_for_episode(episodes[0])

        plain = build_stage2_data(corpus, episodes, kg, seed=0,
                                  ke_negatives=2)
        extended = build_stage2_data(corpus, episodes, kg, seed=0,
                                     ke_negatives=2,
                                     signaling_flows=flows,
                                     config_records=configs)
        assert len(extended.log_rows) > len(plain.log_rows)
        assert any("[SIG]" in r.text for r in extended.log_rows)
        assert any("[CFG]" in r.text for r in extended.log_rows)
        # Numeric config parameters are normalisable.
        numeric_config = [r for r in extended.log_rows
                          if isinstance(r, NumericRow)
                          and r.tag in PARAMETER_CATALOG]
        assert numeric_config
        for row in numeric_config[:5]:
            assert 0.0 <= extended.normalizer.transform_one(
                row.tag, row.value) <= 1.0
