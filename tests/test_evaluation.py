"""Tests for ranking/classification metrics and the k-fold splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    classification_metrics,
    hits_at_k,
    k_fold_splits,
    mean_rank,
    mean_reciprocal_rank,
    rank_of,
    ranking_metrics,
)


class TestRankOf:
    def test_best_score_ranks_first(self):
        assert rank_of(np.array([0.1, 0.9, 0.5]), 1) == 1

    def test_worst_score_ranks_last(self):
        assert rank_of(np.array([0.1, 0.9, 0.5]), 0) == 3

    def test_lower_is_better_mode(self):
        assert rank_of(np.array([0.1, 0.9, 0.5]), 0,
                       higher_is_better=False) == 1

    def test_ties_get_middle_rank(self):
        # All equal: rank should be (n+1)/2-ish, not 1.
        assert rank_of(np.ones(5), 2) == 3

    def test_index_validation(self):
        with pytest.raises(IndexError):
            rank_of(np.ones(3), 5)


class TestAggregates:
    def test_mean_rank(self):
        assert mean_rank([1, 3, 5]) == 3.0

    def test_mrr(self):
        assert np.isclose(mean_reciprocal_rank([1, 2, 4]), (1 + 0.5 + 0.25) / 3)

    def test_hits(self):
        assert hits_at_k([1, 2, 3, 10], 3) == 0.75

    def test_empty_raises(self):
        for fn in (mean_rank, mean_reciprocal_rank):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            hits_at_k([], 3)
        with pytest.raises(ValueError):
            hits_at_k([1], 0)

    def test_bundle(self):
        metrics = ranking_metrics([1, 2], hit_levels=(1, 3))
        assert metrics.mean_rank == 1.5
        assert metrics.hits[1] == 0.5
        assert metrics.hits[3] == 1.0
        assert metrics.as_row((1, 3)) == [1.5, 0.75, 0.5, 1.0]


class TestClassification:
    def test_perfect(self):
        m = classification_metrics(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert m.accuracy == m.precision == m.recall == m.f1 == 1.0

    def test_known_values(self):
        predictions = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        m = classification_metrics(predictions, labels)
        assert m.accuracy == 0.5
        assert m.precision == 0.5
        assert m.recall == 0.5
        assert m.f1 == 0.5

    def test_degenerate_no_positives_predicted(self):
        m = classification_metrics(np.zeros(4), np.array([1, 1, 0, 0]))
        assert m.precision == 0.0
        assert m.f1 == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            classification_metrics(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            classification_metrics(np.zeros(0), np.zeros(0))


class TestKFold:
    def test_five_fold_structure(self):
        splits = k_fold_splits(50, 5)
        assert len(splits) == 5
        for split in splits:
            total = len(split.train) + len(split.valid) + len(split.test)
            assert total == 50
            combined = np.concatenate([split.train, split.valid, split.test])
            assert len(np.unique(combined)) == 50

    def test_every_item_tested_once(self):
        splits = k_fold_splits(23, 5)
        tested = np.concatenate([s.test for s in splits])
        assert sorted(tested.tolist()) == list(range(23))

    def test_valid_is_next_fold(self):
        splits = k_fold_splits(10, 5)
        # test of split i equals valid of split i-1
        for i in range(5):
            assert np.array_equal(np.sort(splits[i].valid),
                                  np.sort(splits[(i + 1) % 5].test))

    def test_shuffling(self):
        a = k_fold_splits(20, 5, rng=np.random.default_rng(0))
        b = k_fold_splits(20, 5)
        assert not np.array_equal(a[0].test, b[0].test)

    def test_validation(self):
        with pytest.raises(ValueError):
            k_fold_splits(10, 2)
        with pytest.raises(ValueError):
            k_fold_splits(3, 5)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=6, max_value=200),
       st.integers(min_value=3, max_value=6))
def test_kfold_partitions_everything(n, k):
    splits = k_fold_splits(n, k)
    for split in splits:
        merged = np.concatenate([split.train, split.valid, split.test])
        assert sorted(merged.tolist()) == list(range(n))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                max_size=50))
def test_ranking_metric_bounds(ranks):
    metrics = ranking_metrics(ranks, hit_levels=(1, 5))
    assert metrics.mean_rank >= 1.0
    assert 0.0 < metrics.mrr <= 1.0
    assert 0.0 <= metrics.hits[1] <= metrics.hits[5] <= 1.0
