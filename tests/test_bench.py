"""Tests for :mod:`repro.bench` — schema, gate math, history, promote,
report, and the ``python -m repro bench`` CLI.

Everything runs against temporary results/baselines directories; the
registry under test is the real one (``bench.train_step`` et al.), so
these tests also pin the registry's contract: gating metrics must be
emitted, absolute timings never gate, the data-parallel bar is
binding-key-guarded.
"""

import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SERVING_THROUGHPUT,
    BENCH_TRAIN_STEP,
    HIGHER_IS_BETTER,
    IMPROVED,
    LOWER_IS_BETTER,
    MISSING,
    NEW,
    NON_BINDING,
    OK,
    REGISTRY,
    REGRESSED,
    TRACKED,
    UNSPECCED,
    BenchRun,
    MetricSpec,
    append_run,
    bench_main,
    check_benchmarks,
    compare_metric,
    compare_runs,
    get_spec,
    load_history,
    load_journal,
    load_run,
    promote,
    record_metrics,
    render_benchmark,
    render_markdown,
    render_report,
    render_text,
    result_path,
    short_name,
    sparkline,
    validate_payload,
)

NOW = datetime(2026, 8, 8, 12, 0, 0, tzinfo=timezone.utc)

#: All gating metrics of ``bench.train_step`` at healthy values, plus a
#: config that makes the data-parallel bar binding.
TRAIN_OK = {
    "mask_batch_speedup_x": 2.0,
    "fused_embedding_speedup_x": 1.8,
    "attention_weights_speedup_x": 1.6,
    "data_parallel_speedup_x": 2.5,
    "stage2_step_ms": 14.0,
}
TRAIN_CONFIG = {"data_parallel": {"speedup_bar_binding": True}}


def emit(results_dir, metrics=None, config=None, bench_id=BENCH_TRAIN_STEP):
    return record_metrics(Path(results_dir), bench_id,
                          dict(TRAIN_OK, **(metrics or {})),
                          config={**TRAIN_CONFIG, **(config or {})},
                          now=NOW)


def statuses(comparison):
    return {row.metric: row.status for row in comparison.rows}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_short_name_strips_namespace(self):
        assert short_name(BENCH_TRAIN_STEP) == "train_step"

    def test_short_name_rejects_unnamespaced(self):
        with pytest.raises(ValueError, match="bench."):
            short_name("train_step")

    def test_get_spec_unknown_lists_known_ids(self):
        with pytest.raises(KeyError, match="bench.train_step"):
            get_spec("bench.typo")

    def test_metric_spec_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            MetricSpec("x", direction="sideways")

    def test_metric_spec_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            MetricSpec("x", tolerance=-0.1)

    def test_gating_property(self):
        assert not MetricSpec("x").gating
        assert MetricSpec("x", tolerance=0.5).gating
        assert MetricSpec("x", abs_tolerance=0.0).gating

    def test_every_registered_benchmark_has_gating_metrics(self):
        for bench_id, spec in REGISTRY.items():
            assert any(m.gating for m in spec.metrics), \
                f"{bench_id} would never gate anything"
            assert spec.source, f"{bench_id} has no source module"


# ----------------------------------------------------------------------
# Schema + emitter
# ----------------------------------------------------------------------
class TestSchema:
    def test_validate_accepts_canonical_payload(self, tmp_path):
        run = emit(tmp_path)
        assert validate_payload(run.to_payload()) == []

    def test_validate_rejects_non_dict(self):
        assert validate_payload([1, 2]) != []

    def test_validate_rejects_mismatched_bench_id(self):
        payload = {"schema_version": 1, "name": "train_step",
                   "bench_id": "bench.other", "metrics": [], "host": {}}
        assert any("does not match" in p
                   for p in validate_payload(payload))

    def test_validate_rejects_duplicate_metric(self):
        payload = {"schema_version": 1, "name": "train_step",
                   "bench_id": BENCH_TRAIN_STEP, "host": {},
                   "metrics": [{"metric": "a", "value": 1},
                               {"metric": "a", "value": 2}]}
        assert any("duplicate" in p for p in validate_payload(payload))

    def test_validate_rejects_non_finite_and_bool_values(self):
        payload = {"schema_version": 1, "name": "train_step",
                   "bench_id": BENCH_TRAIN_STEP, "host": {},
                   "metrics": [{"metric": "a", "value": float("nan")},
                               {"metric": "b", "value": True}]}
        problems = validate_payload(payload)
        assert len([p for p in problems if "finite" in p]) == 2

    def test_legacy_payload_loads_non_strict(self):
        legacy = {"name": "train_step",
                  "metrics": [{"metric": "stage2_step_ms", "value": 14.0}],
                  "git_sha": "abc1234"}
        assert validate_payload(legacy) != []          # strict: rejected
        run = BenchRun.from_payload(legacy)
        assert run.bench_id == BENCH_TRAIN_STEP
        assert run.metrics == {"stage2_step_ms": 14.0}

    def test_record_metrics_merges_across_calls(self, tmp_path):
        record_metrics(tmp_path, BENCH_TRAIN_STEP,
                       {"stage2_step_ms": 14.0}, now=NOW)
        record_metrics(tmp_path, BENCH_TRAIN_STEP,
                       {"mask_batch_speedup_x": 2.0},
                       config=TRAIN_CONFIG, now=NOW)
        run = load_run(result_path(tmp_path, BENCH_TRAIN_STEP))
        assert run.metrics == {"stage2_step_ms": 14.0,
                               "mask_batch_speedup_x": 2.0}
        assert run.config["data_parallel"]["speedup_bar_binding"] is True

    def test_record_metrics_rounds_to_three_decimals(self, tmp_path):
        run = record_metrics(tmp_path, BENCH_TRAIN_STEP,
                             {"stage2_step_ms": 14.00049}, now=NOW)
        assert run.metrics["stage2_step_ms"] == 14.0

    def test_record_metrics_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(KeyError, match="unknown benchmark"):
            record_metrics(tmp_path, "bench.typo", {"x": 1.0})

    def test_record_metrics_rejects_non_finite(self, tmp_path):
        with pytest.raises(ValueError, match="not finite"):
            record_metrics(tmp_path, BENCH_TRAIN_STEP,
                           {"stage2_step_ms": float("inf")})

    def test_record_metrics_updates_history(self, tmp_path):
        emit(tmp_path)
        entries = load_history(tmp_path / "history", BENCH_TRAIN_STEP)
        assert len(entries) == 1
        assert entries[0]["bench_id"] == BENCH_TRAIN_STEP


# ----------------------------------------------------------------------
# Gate math (compare_metric)
# ----------------------------------------------------------------------
SPEEDUP = MetricSpec("speedup_x", HIGHER_IS_BETTER, tolerance=0.5)
LATENCY = MetricSpec("step_ms", LOWER_IS_BETTER, tolerance=0.2, unit="ms")
TRACKED_MS = MetricSpec("raw_ms", LOWER_IS_BETTER)
INVARIANT = MetricSpec("errors", LOWER_IS_BETTER, abs_tolerance=0.0)
GUARDED = MetricSpec("parallel_x", HIGHER_IS_BETTER, tolerance=0.5,
                     binding_key="parallel.binding")


class TestCompareMetric:
    def test_improvement_never_fails_higher(self):
        row = compare_metric(SPEEDUP, 2.0, 10.0, {})
        assert row.status == IMPROVED and not row.failed

    def test_improvement_never_fails_lower(self):
        row = compare_metric(LATENCY, 20.0, 1.0, {})
        assert row.status == IMPROVED and not row.failed

    def test_equal_is_ok(self):
        assert compare_metric(SPEEDUP, 2.0, 2.0, {}).status == OK

    def test_regression_within_tolerance_passes(self):
        # 2.0 -> 1.1: 45% worse, tolerance 50%.
        assert compare_metric(SPEEDUP, 2.0, 1.1, {}).status == OK

    def test_regression_past_tolerance_always_fails(self):
        row = compare_metric(SPEEDUP, 2.0, 0.9, {})
        assert row.status == REGRESSED and row.failed
        assert row.delta_pct == pytest.approx(-55.0)

    def test_lower_is_better_regression_direction(self):
        assert compare_metric(LATENCY, 10.0, 13.0, {}).status == REGRESSED
        assert compare_metric(LATENCY, 10.0, 11.5, {}).status == OK

    def test_tracked_metric_never_fails(self):
        row = compare_metric(TRACKED_MS, 10.0, 1000.0, {})
        assert row.status == TRACKED and not row.failed

    def test_zero_baseline_invariant_any_worsening_fails(self):
        assert compare_metric(INVARIANT, 0.0, 0.0, {}).status == OK
        assert compare_metric(INVARIANT, 0.0, 1.0, {}).status == REGRESSED

    def test_more_permissive_bound_wins(self):
        spec = MetricSpec("ms", LOWER_IS_BETTER, tolerance=0.1,
                          abs_tolerance=50.0)
        # +40 absolute on a baseline of 10 blows the 10% relative bound
        # but sits inside the 50 absolute allowance.
        assert compare_metric(spec, 10.0, 50.0, {}).status == OK
        assert compare_metric(spec, 10.0, 61.0, {}).status == REGRESSED

    def test_non_binding_skipped_with_note(self):
        row = compare_metric(GUARDED, 2.0, 0.2,
                             {"parallel": {"binding": False}})
        assert row.status == NON_BINDING and not row.failed
        assert "not binding" in row.note

    def test_missing_binding_key_means_non_binding(self):
        assert compare_metric(GUARDED, 2.0, 0.2, {}).status == NON_BINDING

    def test_binding_key_truthy_gates_normally(self):
        row = compare_metric(GUARDED, 2.0, 0.2,
                             {"parallel": {"binding": True}})
        assert row.status == REGRESSED

    def test_gating_metric_absent_from_run_fails(self):
        row = compare_metric(SPEEDUP, 2.0, None, {})
        assert row.status == MISSING and row.failed

    def test_tracked_metric_absent_is_fine(self):
        assert compare_metric(TRACKED_MS, 10.0, None, {}).status == TRACKED

    def test_no_baseline_yet_is_new(self):
        assert compare_metric(SPEEDUP, None, 2.0, {}).status == NEW


class TestCompareRuns:
    def test_unspecced_metric_reported(self):
        spec = get_spec(BENCH_TRAIN_STEP)
        current = BenchRun(BENCH_TRAIN_STEP,
                           metrics=dict(TRAIN_OK, surprise_ms=1.0),
                           config=TRAIN_CONFIG)
        baseline = BenchRun(BENCH_TRAIN_STEP, metrics=dict(TRAIN_OK),
                            config=TRAIN_CONFIG)
        comparison = compare_runs(spec, baseline, current)
        assert statuses(comparison)["surprise_ms"] == UNSPECCED
        assert not comparison.failed


# ----------------------------------------------------------------------
# check_benchmarks + rendering
# ----------------------------------------------------------------------
class TestCheck:
    def test_clean_run_passes(self, tmp_path):
        results, baselines = tmp_path / "r", tmp_path / "b"
        emit(results)
        promote(results, baselines, now=NOW)
        comparisons = check_benchmarks(results, baselines)
        assert [c.bench_id for c in comparisons] == [BENCH_TRAIN_STEP]
        assert not comparisons[0].failed

    def test_synthetic_regression_fails(self, tmp_path):
        results, baselines = tmp_path / "r", tmp_path / "b"
        emit(results)
        promote(results, baselines, now=NOW)
        emit(results, {"mask_batch_speedup_x": 0.5})   # -75%, tol 50%
        comparisons = check_benchmarks(results, baselines)
        assert comparisons[0].failed
        assert statuses(comparisons[0])["mask_batch_speedup_x"] == REGRESSED

    def test_result_without_baseline_is_error(self, tmp_path):
        emit(tmp_path / "r")
        comparisons = check_benchmarks(tmp_path / "r", tmp_path / "b")
        assert comparisons[0].failed
        assert "promote" in comparisons[0].error

    def test_named_benchmark_without_result_is_error(self, tmp_path):
        comparisons = check_benchmarks(tmp_path / "r", tmp_path / "b",
                                       [BENCH_TRAIN_STEP])
        assert comparisons[0].failed and "no current result" in \
            comparisons[0].error

    def test_unnamed_benchmarks_without_results_skipped(self, tmp_path):
        assert check_benchmarks(tmp_path / "r", tmp_path / "b") == []

    def test_corrupt_result_is_error(self, tmp_path):
        results = tmp_path / "r"
        results.mkdir()
        result_path(results, BENCH_TRAIN_STEP).write_text("{not json")
        comparisons = check_benchmarks(results, tmp_path / "b")
        assert comparisons[0].failed and "unreadable" in \
            comparisons[0].error

    def test_render_text_and_markdown(self, tmp_path):
        results, baselines = tmp_path / "r", tmp_path / "b"
        emit(results)
        promote(results, baselines, now=NOW)
        emit(results, {"mask_batch_speedup_x": 0.5})
        comparisons = check_benchmarks(results, baselines)
        text = render_text(comparisons)
        assert "FAIL" in text and "mask_batch_speedup_x" in text
        markdown = render_markdown(comparisons)
        assert "❌ FAIL" in markdown
        assert "| `mask_batch_speedup_x` |" in markdown


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
def _run(sha, step_ms):
    return BenchRun(BENCH_TRAIN_STEP,
                    metrics={"stage2_step_ms": step_ms},
                    git_sha=sha, date="2026-08-08T12:00:00+00:00")


class TestHistory:
    def test_new_sha_appends(self, tmp_path):
        append_run(tmp_path, _run("aaa", 10.0))
        append_run(tmp_path, _run("bbb", 11.0))
        entries = load_history(tmp_path, BENCH_TRAIN_STEP)
        assert [e["git_sha"] for e in entries] == ["aaa", "bbb"]

    def test_same_sha_replaces_trailing_entry(self, tmp_path):
        append_run(tmp_path, _run("aaa", 10.0))
        append_run(tmp_path, _run("aaa", 12.0))
        entries = load_history(tmp_path, BENCH_TRAIN_STEP)
        assert len(entries) == 1
        assert entries[0]["metrics"][0]["value"] == 12.0

    def test_unknown_sha_always_appends(self, tmp_path):
        append_run(tmp_path, _run("unknown", 10.0))
        append_run(tmp_path, _run("unknown", 11.0))
        assert len(load_history(tmp_path, BENCH_TRAIN_STEP)) == 2

    def test_rotation_drops_oldest_and_leaves_marker(self, tmp_path):
        for index in range(5):
            append_run(tmp_path, _run(f"sha{index}", float(index)),
                       max_entries=3)
        entries = load_history(tmp_path, BENCH_TRAIN_STEP)
        assert [e["git_sha"] for e in entries] == ["sha2", "sha3", "sha4"]
        lines = [json.loads(line) for line in
                 (tmp_path / "train_step.jsonl").read_text().splitlines()]
        assert lines[0] == {"rotated": 2}

    def test_torn_trailing_line_skipped(self, tmp_path):
        append_run(tmp_path, _run("aaa", 10.0))
        path = tmp_path / "train_step.jsonl"
        path.write_text(path.read_text() + '{"torn": ')
        assert len(load_history(tmp_path, BENCH_TRAIN_STEP)) == 1


# ----------------------------------------------------------------------
# Promote
# ----------------------------------------------------------------------
class TestPromote:
    def test_baseline_is_byte_for_byte_copy(self, tmp_path):
        results, baselines = tmp_path / "r", tmp_path / "b"
        emit(results)
        promote(results, baselines, now=NOW)
        assert result_path(baselines, BENCH_TRAIN_STEP).read_bytes() == \
            result_path(results, BENCH_TRAIN_STEP).read_bytes()

    def test_journal_records_per_metric_deltas(self, tmp_path):
        results, baselines = tmp_path / "r", tmp_path / "b"
        emit(results)
        promote(results, baselines, now=NOW)
        emit(results, {"mask_batch_speedup_x": 1.0})
        promote(results, baselines, note="accepting slower mask", now=NOW)
        records = load_journal(baselines)
        assert len(records) == 2
        assert records[0]["previous_sha"] is None
        last = records[1]
        assert last["note"] == "accepting slower mask"
        (change,) = [c for c in last["changes"]
                     if c["metric"] == "mask_batch_speedup_x"]
        assert change["from"] == 2.0 and change["to"] == 1.0
        assert change["delta_pct"] == pytest.approx(-50.0)

    def test_named_benchmark_without_result_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nothing to promote"):
            promote(tmp_path / "r", tmp_path / "b", [BENCH_TRAIN_STEP])

    def test_unnamed_benchmarks_without_results_skipped(self, tmp_path):
        assert promote(tmp_path / "r", tmp_path / "b", now=NOW) == []


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
class TestReport:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"
        line = sparkline([1.0, 2.0, 3.0, 2.0, 10.0])
        assert len(line) == 5
        assert line[-1] == "█" and line[0] == "▁"

    def test_render_benchmark_table(self, tmp_path):
        for index, step_ms in enumerate([10.0, 12.0, 11.0]):
            append_run(tmp_path, _run(f"sha{index}", step_ms))
        block = render_benchmark(
            BENCH_TRAIN_STEP,
            load_history(tmp_path, BENCH_TRAIN_STEP))
        assert "3 run(s)" in block
        assert "| `stage2_step_ms` | 11 ms | +10.0% |" in block

    def test_render_benchmark_no_history(self):
        assert "no history yet" in render_benchmark(BENCH_TRAIN_STEP, [])

    def test_render_report_covers_registry(self, tmp_path):
        report = render_report(tmp_path)
        for bench_id in REGISTRY:
            assert f"`{bench_id}`" in report


# ----------------------------------------------------------------------
# CLI (python -m repro bench ...)
# ----------------------------------------------------------------------
def bench(tmp_path, *argv):
    return bench_main(["--results-dir", str(tmp_path / "r"),
                       "--baselines-dir", str(tmp_path / "b"), *argv])


class TestCli:
    def test_check_exits_zero_on_clean_run(self, tmp_path, capsys):
        emit(tmp_path / "r")
        assert bench(tmp_path, "promote", "--note", "seed") == 0
        assert bench(tmp_path, "check") == 0
        assert "within tolerance" in capsys.readouterr().err

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        emit(tmp_path / "r")
        assert bench(tmp_path, "promote", "--note", "seed") == 0
        emit(tmp_path / "r", {"mask_batch_speedup_x": 0.5})
        assert bench(tmp_path, "check") == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "FAIL" in captured.err

    def test_check_writes_github_step_summary(self, tmp_path, capsys,
                                              monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        emit(tmp_path / "r")
        bench(tmp_path, "promote")
        assert bench(tmp_path, "check") == 0
        assert "Benchmark regression gate" in summary.read_text()
        capsys.readouterr()
        summary.unlink()
        assert bench(tmp_path, "check", "--no-summary") == 0
        assert not summary.exists()

    def test_check_short_names_accepted(self, tmp_path, capsys):
        emit(tmp_path / "r")
        bench(tmp_path, "promote")
        assert bench(tmp_path, "check", "--names", "train_step") == 0

    def test_unknown_name_is_usage_error(self, tmp_path, capsys):
        assert bench(tmp_path, "check", "--names", "typo") == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_report_renders_history(self, tmp_path, capsys):
        emit(tmp_path / "r")
        assert bench(tmp_path, "report", "--names", "train_step") == 0
        out = capsys.readouterr().out
        assert "Benchmark trends" in out and "stage2_step_ms" in out

    def test_report_output_file(self, tmp_path, capsys):
        emit(tmp_path / "r")
        target = tmp_path / "report.md"
        assert bench(tmp_path, "report", "--output", str(target)) == 0
        assert "Benchmark trends" in target.read_text()

    def test_promote_named_without_result_exits_2(self, tmp_path, capsys):
        assert bench(tmp_path, "promote", "--names", "train_step") == 2

    def test_list_shows_registry(self, tmp_path, capsys):
        assert bench(tmp_path, "list") == 0
        out = capsys.readouterr().out
        assert BENCH_TRAIN_STEP in out
        assert BENCH_SERVING_THROUGHPUT in out
        assert "higher is better" in out

    def test_repro_entry_point_routes_bench(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "--results-dir", str(tmp_path / "r"),
                     "--baselines-dir", str(tmp_path / "b"), "list"])
        assert code == 0
        assert BENCH_TRAIN_STEP in capsys.readouterr().out
