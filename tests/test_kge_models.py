"""Tests for the extended KGE model zoo (TransH, DistMult, ComplEx, RotatE)."""

import numpy as np
import pytest

from repro.kge import (
    ComplEx,
    DistMult,
    RotatE,
    TransH,
    build_kge_model,
    link_prediction_ranks,
)
from repro.nn.optim import Adam

ALL_MODELS = ["transh", "distmult", "complex", "rotate"]


def rng():
    return np.random.default_rng(55)


def _chain(n=6):
    return [(i, 0, i + 1) for i in range(n - 1)]


class TestFactory:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_build(self, name):
        model = build_kge_model(name, 5, 2, 8, rng())
        assert model.num_entities == 5

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_kge_model("nope", 5, 2, 8, rng())


class TestScoring:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_score_shape(self, name):
        model = build_kge_model(name, 6, 3, 8, rng())
        scores = model.score(np.array([0, 1]), np.array([0, 2]),
                             np.array([3, 4]))
        assert scores.shape == (2,)
        assert np.isfinite(scores.data).all()

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_score_all_tails(self, name):
        model = build_kge_model(name, 6, 3, 8, rng())
        scores = model.score_all_tails(0, 1)
        assert scores.shape == (6,)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_gradients_flow(self, name):
        model = build_kge_model(name, 6, 3, 8, rng())
        loss = model.margin_loss(np.array([[0, 0, 1]]),
                                 np.array([[0, 0, 3]]), margin=5.0)
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert any(grads)


class TestSemantics:
    def test_transh_projection_removes_normal_component(self):
        model = TransH(4, 2, 4, rng())
        from repro.tensor.tensor import Tensor
        vectors = Tensor(np.array([[1.0, 2.0, 3.0, 4.0]]))
        normals = Tensor(np.array([[1.0, 0.0, 0.0, 0.0]]))
        projected = model._project(vectors, normals).data
        assert abs(projected[0, 0]) < 1e-9
        assert np.allclose(projected[0, 1:], [2.0, 3.0, 4.0])

    def test_distmult_symmetric(self):
        """DistMult cannot distinguish (h,r,t) from (t,r,h) — by design."""
        model = DistMult(5, 2, 8, rng())
        a = model.score(np.array([0]), np.array([0]), np.array([1])).data
        b = model.score(np.array([1]), np.array([0]), np.array([0])).data
        assert np.allclose(a, b)

    def test_complex_asymmetric(self):
        model = ComplEx(5, 2, 8, rng())
        a = model.score(np.array([0]), np.array([0]), np.array([1])).data
        b = model.score(np.array([1]), np.array([0]), np.array([0])).data
        assert not np.allclose(a, b)

    def test_rotate_zero_phase_is_identity(self):
        model = RotatE(4, 1, 4, rng())
        model.phases.data[:] = 0.0
        model.entity_im.data[:] = 0.0
        # With zero phase and real entities, distance is plain L2 of re parts.
        score = model.score(np.array([0]), np.array([0]), np.array([0])).data
        # The sqrt's numerical-stability epsilon leaves ~1e-6 per dimension.
        assert np.allclose(score, 0.0, atol=1e-5)

    def test_rotate_phase_gradient(self):
        model = RotatE(4, 1, 4, rng())
        loss = model.score(np.array([0]), np.array([0]), np.array([1])).sum()
        loss.backward()
        assert model.phases.grad is not None
        assert np.abs(model.phases.grad).sum() > 0


class TestLearning:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_training_improves_ranks(self, name):
        triples = _chain(6)
        model = build_kge_model(name, 6, 1, 16, rng())
        opt = Adam(model.parameters(), lr=0.05)
        gen = np.random.default_rng(0)
        positives = np.array(triples)
        before = np.mean(link_prediction_ranks(model, triples,
                                               known_triples=triples))
        for _ in range(120):
            negatives = positives.copy()
            negatives[:, 2] = gen.integers(0, 6, size=len(triples))
            valid = negatives[:, 2] != positives[:, 2]
            if not valid.any():
                continue
            opt.zero_grad()
            loss = model.margin_loss(positives[valid], negatives[valid],
                                     margin=2.0)
            loss.backward()
            opt.step()
            model.normalize_entities()
        after = np.mean(link_prediction_ranks(model, triples,
                                              known_triples=triples))
        assert after <= before
