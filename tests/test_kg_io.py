"""Tests for Tele-KG import/export."""

import pytest

from repro.kg import build_tele_kg, export_json, export_ntriples, import_json
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def kg():
    world = TelecomWorld.generate(seed=19, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    return build_tele_kg(world)


class TestNTriples:
    def test_export_structure(self, kg, tmp_path):
        path = export_ntriples(kg, tmp_path / "kg.nt")
        lines = path.read_text().strip().splitlines()
        assert all(line.endswith(" .") for line in lines)
        # type facts + label facts + relations + attributes
        expected = 2 * kg.num_entities + kg.num_triples + kg.num_attributes
        assert len(lines) == expected

    def test_uri_encoding_roundtrip(self):
        from repro.kg.io import _decode_uri, _encode_uri
        assert _decode_uri(_encode_uri("ALM-10001")) == "ALM-10001"
        assert _decode_uri(_encode_uri("has space")) == "has space"
        with pytest.raises(ValueError):
            _decode_uri("http://other")

    def test_numeric_literals_typed(self, kg, tmp_path):
        path = export_ntriples(kg, tmp_path / "kg.nt")
        assert "^^xsd:double" in path.read_text()


class TestJsonRoundTrip:
    def test_counts_preserved(self, kg, tmp_path):
        export_json(kg, tmp_path / "kg.json")
        restored = import_json(tmp_path / "kg.json")
        assert restored.describe() == kg.describe()

    def test_triples_preserved(self, kg, tmp_path):
        export_json(kg, tmp_path / "kg.json")
        restored = import_json(tmp_path / "kg.json")
        for triple in kg.triples[:20]:
            assert restored.has_triple(triple.head, triple.relation,
                                       triple.tail)

    def test_surfaces_and_classes_preserved(self, kg, tmp_path):
        export_json(kg, tmp_path / "kg.json")
        restored = import_json(tmp_path / "kg.json")
        for entity in kg.entities()[:20]:
            other = restored.entity(entity.uid)
            assert other.surface == entity.surface
            assert other.cls == entity.cls

    def test_numeric_attributes_stay_numeric(self, kg, tmp_path):
        export_json(kg, tmp_path / "kg.json")
        restored = import_json(tmp_path / "kg.json")
        numeric_before = sum(1 for a in kg.attributes if a.is_numeric)
        numeric_after = sum(1 for a in restored.attributes if a.is_numeric)
        assert numeric_before == numeric_after

    def test_schema_preserved(self, kg, tmp_path):
        export_json(kg, tmp_path / "kg.json")
        restored = import_json(tmp_path / "kg.json")
        assert restored.schema.parents == kg.schema.parents
