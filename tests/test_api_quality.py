"""API quality gates: docstrings on every public item, importable __all__."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [name for _, name, _ in pkgutil.walk_packages(
    repro.__path__, prefix="repro.")
    if "__main__" not in name]  # importing __main__ runs the CLI


def _public_members(module):
    for name in dir(module):
        if name.startswith("_"):
            continue
        member = getattr(module, name)
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        # Only require docs for items defined inside this package.
        if getattr(member, "__module__", "").startswith("repro"):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    undocumented = [name for name, member in _public_members(module)
                    if not inspect.getdoc(member)]
    assert not undocumented, (f"{module_name} has undocumented public items: "
                              f"{undocumented}")


@pytest.mark.parametrize("module_name",
                         [m for m in MODULES if m.count(".") == 1])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_is_semver():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
