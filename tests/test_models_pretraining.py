"""Tests for masking, ELECTRA, KE objective, and TeleBERT pre-training."""

import numpy as np
import pytest

from repro.models import (
    BertConfig,
    ElectraPretrainer,
    KnowledgeEmbeddingObjective,
    TeleBertTrainer,
    pretrain_telebert,
)
from repro.models.ke import transe_distance
from repro.tensor import Tensor
from repro.tokenization import WholeWordSegmenter, WordTokenizer
from repro.training import BatchIterator, DynamicMasker, build_strategy
from repro.training.masking import IGNORE_INDEX
from repro.training.mtl import TASK_KE, TASK_MASK


CORPUS = [
    "the link failure leads to session drops",
    "the registration success rate decreases after the alarm",
    "network congestion points affect the paging channel",
    "the session establishment service rejects incoming requests",
    "clock synchronisation source is lost on the board",
    "license utilisation percentage exceeds the threshold",
] * 3


def _tokenizer():
    return WordTokenizer.from_corpus(CORPUS, max_length=16)


class TestDynamicMasker:
    def _masker(self, rate=0.4, segmenter=None):
        tok = _tokenizer()
        return tok, DynamicMasker(tok.vocab, np.random.default_rng(0),
                                  masking_rate=rate, segmenter=segmenter)

    def test_rate_validation(self):
        tok = _tokenizer()
        with pytest.raises(ValueError):
            DynamicMasker(tok.vocab, np.random.default_rng(0), masking_rate=0.0)
        with pytest.raises(ValueError):
            DynamicMasker(tok.vocab, np.random.default_rng(0),
                          masking_rate=0.4, mask_token_prob=0.8,
                          random_token_prob=0.3)

    def test_labels_match_originals(self):
        tok, masker = self._masker()
        ids, mask = tok.encode_batch(CORPUS[:4])
        out = masker.mask_batch(ids, mask)
        rows, cols = np.nonzero(out.mask_positions)
        assert len(rows) > 0
        assert np.array_equal(out.labels[rows, cols], ids[rows, cols])
        unmasked = out.labels[~out.mask_positions]
        assert (unmasked == IGNORE_INDEX).all()

    def test_specials_never_masked(self):
        tok, masker = self._masker(rate=0.9)
        ids, mask = tok.encode_batch(CORPUS[:4])
        out = masker.mask_batch(ids, mask)
        for special_id in (tok.vocab.cls_id, tok.vocab.sep_id, tok.vocab.pad_id):
            positions = ids == special_id
            assert not out.mask_positions[positions].any()

    def test_padding_never_masked(self):
        tok, masker = self._masker()
        ids, mask = tok.encode_batch(["the link failure", CORPUS[1]])
        out = masker.mask_batch(ids, mask)
        assert not out.mask_positions[mask == 0].any()

    def test_masking_rate_approximate(self):
        tok, masker = self._masker(rate=0.4)
        ids, mask = tok.encode_batch(CORPUS)
        out = masker.mask_batch(ids, mask)
        candidates = (mask == 1).sum() - 2 * len(CORPUS)  # minus CLS/SEP
        observed = out.num_masked / candidates
        assert 0.25 < observed < 0.55

    def test_dynamic_patterns_differ(self):
        tok, masker = self._masker()
        ids, mask = tok.encode_batch(CORPUS[:4])
        a = masker.mask_batch(ids, mask).mask_positions
        b = masker.mask_batch(ids, mask).mask_positions
        assert not np.array_equal(a, b)

    def test_wwm_masks_whole_phrases(self):
        segmenter = WholeWordSegmenter([["network", "congestion", "points"]])
        tok, masker = self._masker(rate=0.3, segmenter=segmenter)
        text = "network congestion points affect the paging channel"
        ids, mask = tok.encode_batch([text] * 8)
        tokens = [tok.encode(text).tokens] * 8
        out = masker.mask_batch(ids, mask, tokens=tokens)
        # Whenever any phrase token is masked, the entire phrase must be.
        phrase_cols = [1, 2, 3]  # after [CLS]
        for row in range(8):
            phrase_masked = out.mask_positions[row, phrase_cols]
            assert phrase_masked.all() or not phrase_masked.any()

    def test_excluded_positions_respected(self):
        tok, masker = self._masker(rate=0.9)
        ids, mask = tok.encode_batch(CORPUS[:2])
        excluded = [{1, 2}, set()]
        out = masker.mask_batch(ids, mask, excluded_positions=excluded)
        assert not out.mask_positions[0, 1] and not out.mask_positions[0, 2]


class TestBatchIterator:
    def test_covers_epoch(self):
        it = BatchIterator(list(range(10)), 3, np.random.default_rng(0))
        seen = [x for batch in it for x in batch]
        assert sorted(seen) == list(range(10))

    def test_next_batch_cycles(self):
        it = BatchIterator([1, 2, 3], 2, np.random.default_rng(0))
        collected = [it.next_batch() for _ in range(4)]
        assert all(len(b) >= 1 for b in collected)
        assert it.epochs_completed >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchIterator([], 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            BatchIterator([1], 0, np.random.default_rng(0))


class TestElectra:
    def test_step_losses_finite(self):
        tok = _tokenizer()
        config = BertConfig(vocab_size=len(tok.vocab), d_model=16,
                            num_layers=1, num_heads=2, d_ff=32, max_len=16,
                            dropout=0.0)
        pretrainer = ElectraPretrainer(config, np.random.default_rng(0))
        masker = DynamicMasker(tok.vocab, np.random.default_rng(1),
                               masking_rate=0.3)
        ids, mask = tok.encode_batch(CORPUS[:4])
        out = pretrainer.step(ids, mask, masker)
        assert np.isfinite(out.total.data)
        assert out.generator_loss > 0
        assert out.discriminator_loss > 0
        assert 0.0 <= out.replaced_fraction <= 1.0

    def test_generator_is_smaller(self):
        tok = _tokenizer()
        config = BertConfig(vocab_size=len(tok.vocab), d_model=16,
                            num_layers=1, num_heads=2, d_ff=32, max_len=16)
        pretrainer = ElectraPretrainer(config, np.random.default_rng(0))
        assert pretrainer.generator.config.d_model < config.d_model

    def test_gradients_reach_both_models(self):
        tok = _tokenizer()
        config = BertConfig(vocab_size=len(tok.vocab), d_model=16,
                            num_layers=1, num_heads=2, d_ff=32, max_len=16,
                            dropout=0.0)
        pretrainer = ElectraPretrainer(config, np.random.default_rng(0))
        masker = DynamicMasker(tok.vocab, np.random.default_rng(1),
                               masking_rate=0.3)
        ids, mask = tok.encode_batch(CORPUS[:4])
        pretrainer.step(ids, mask, masker).total.backward()
        gen_grads = [p.grad is not None for p in pretrainer.generator.parameters()]
        disc_grads = [p.grad is not None
                      for p in pretrainer.discriminator.parameters()]
        assert any(gen_grads) and any(disc_grads)


class TestKnowledgeEmbedding:
    def test_transe_distance(self):
        h = Tensor(np.array([[1.0, 0.0]]))
        r = Tensor(np.array([[0.0, 1.0]]))
        t = Tensor(np.array([[1.0, 1.0]]))
        assert np.allclose(transe_distance(h, r, t).data, 0.0, atol=1e-6)

    def test_loss_decreases_for_good_embeddings(self):
        objective = KnowledgeEmbeddingObjective(gamma=1.0)
        rng = np.random.default_rng(0)
        # Perfect: h + r == t; negatives far away.
        h = Tensor(rng.normal(size=(4, 8)))
        r = Tensor(rng.normal(size=(4, 8)))
        t = h + r
        neg_h = Tensor(rng.normal(5.0, 1.0, size=(4, 3, 8)))
        neg_t = Tensor(rng.normal(-5.0, 1.0, size=(4, 3, 8)))
        neg_r = r.expand_dims(1)
        good = objective.loss(h, r, t, neg_h, neg_r, neg_t)
        bad = objective.loss(h, r, Tensor(rng.normal(5, 1, size=(4, 8))),
                             h.expand_dims(1) + Tensor(np.zeros((4, 3, 8))),
                             neg_r,
                             (h + r).expand_dims(1) + Tensor(np.zeros((4, 3, 8))))
        assert float(good.data) < float(bad.data)

    def test_adversarial_weighting(self):
        objective = KnowledgeEmbeddingObjective(gamma=1.0,
                                                adversarial_temperature=1.0)
        rng = np.random.default_rng(1)
        h = Tensor(rng.normal(size=(2, 4)))
        r = Tensor(rng.normal(size=(2, 4)))
        t = Tensor(rng.normal(size=(2, 4)))
        loss = objective.loss(h, r, t,
                              Tensor(rng.normal(size=(2, 5, 4))),
                              r.expand_dims(1),
                              Tensor(rng.normal(size=(2, 5, 4))))
        assert np.isfinite(loss.data)


class TestTeleBertTrainer:
    def test_training_reduces_loss(self):
        trainer = TeleBertTrainer(CORPUS, seed=0, d_model=16, num_layers=1,
                                  num_heads=2, d_ff=32, max_len=16,
                                  batch_size=6, learning_rate=3e-3)
        log = trainer.train(steps=30)
        early = np.mean(log.total[:5])
        late = np.mean(log.total[-5:])
        assert late < early

    def test_encode_sentences_deterministic(self):
        trainer = pretrain_telebert(CORPUS, steps=3, seed=0, d_model=16,
                                    num_layers=1, num_heads=2, d_ff=32,
                                    max_len=16)
        a = trainer.encode_sentences(CORPUS[:3])
        b = trainer.encode_sentences(CORPUS[:3])
        assert np.allclose(a, b)
        assert a.shape == (3, 16)

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            TeleBertTrainer([], seed=0)

    def test_wwm_phrases_accepted(self):
        trainer = TeleBertTrainer(CORPUS, seed=0, d_model=16, num_layers=1,
                                  num_heads=2, d_ff=32, max_len=16,
                                  wwm_phrases=["network congestion points"])
        assert trainer.masker.segmenter is not None
        trainer.train(steps=2)


class TestMtlStrategies:
    def test_stl_is_mask_only(self):
        strategy = build_strategy("stl", 100)
        assert strategy.tasks_at(0) == frozenset({TASK_MASK})
        assert strategy.tasks_at(99) == frozenset({TASK_MASK})
        assert not strategy.uses_ke()

    def test_pmtl_always_both(self):
        strategy = build_strategy("pmtl", 100)
        for step in (0, 50, 99):
            assert strategy.tasks_at(step) == frozenset({TASK_MASK, TASK_KE})

    def test_imtl_stages(self):
        strategy = build_strategy("imtl", 100)
        assert strategy.tasks_at(0) == frozenset({TASK_MASK})
        assert strategy.tasks_at(50) == frozenset({TASK_KE})
        assert strategy.tasks_at(99) == frozenset({TASK_MASK, TASK_KE})
        assert strategy.uses_ke()

    def test_imtl_covers_all_steps(self):
        for total in (7, 10, 60, 1000):
            strategy = build_strategy("imtl", total)
            for step in range(total):
                assert strategy.tasks_at(step)  # never empty

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            build_strategy("nope", 10)

    def test_step_out_of_range(self):
        strategy = build_strategy("stl", 10)
        with pytest.raises(IndexError):
            strategy.tasks_at(10)


class TestMlmEvaluation:
    def test_accuracy_improves_with_training(self):
        held_out = CORPUS[:6]
        trainer = TeleBertTrainer(CORPUS, seed=0, d_model=16, num_layers=1,
                                  num_heads=2, d_ff=32, max_len=16,
                                  batch_size=6, learning_rate=3e-3)
        before = trainer.evaluate_mlm_accuracy(held_out, seed=5)
        trainer.train(steps=60)
        after = trainer.evaluate_mlm_accuracy(held_out, seed=5)
        assert 0.0 <= before <= 1.0
        assert after >= before

    def test_empty_input_raises(self):
        trainer = TeleBertTrainer(CORPUS, seed=0, d_model=16, num_layers=1,
                                  num_heads=2, d_ff=32, max_len=16)
        with pytest.raises(ValueError):
            trainer.evaluate_mlm_accuracy([])

    def test_deterministic_given_seed(self):
        trainer = TeleBertTrainer(CORPUS, seed=0, d_model=16, num_layers=1,
                                  num_heads=2, d_ff=32, max_len=16)
        a = trainer.evaluate_mlm_accuracy(CORPUS[:4], seed=3)
        b = trainer.evaluate_mlm_accuracy(CORPUS[:4], seed=3)
        assert a == b
