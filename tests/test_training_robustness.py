"""Failure-injection and robustness tests for the training stack."""

import numpy as np
import pytest

from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.models import KTeleBert, KTeleBertConfig, TeleBertTrainer
from repro.tensor import functional as F, Tensor
from repro.tokenization import Vocab, WordTokenizer
from repro.training import DynamicMasker, build_strategy
from repro.training.retrainer import KTeleBertRetrainer
from repro.training.stage2 import Stage2Data, build_stage2_data
from repro.world import TelecomWorld


class TestMaskerDegenerate:
    def test_all_positions_excluded_yields_no_masking(self):
        tok = WordTokenizer.from_corpus(["alpha beta gamma"])
        masker = DynamicMasker(tok.vocab, np.random.default_rng(0),
                               masking_rate=0.9)
        ids, mask = tok.encode_batch(["alpha beta gamma"])
        excluded = [set(range(ids.shape[1]))]
        out = masker.mask_batch(ids, mask, excluded_positions=excluded)
        assert out.num_masked == 0
        # The MLM loss on an all-ignored batch is exactly zero (no crash).
        loss = F.cross_entropy(Tensor(np.zeros((1, ids.shape[1], 8))),
                               out.labels, ignore_index=-100)
        assert loss.data == 0.0

    def test_sequence_of_only_specials(self):
        vocab = Vocab()
        vocab.add_special_tokens(["[ALM]"])
        tok = WordTokenizer(vocab, max_length=8)
        masker = DynamicMasker(vocab, np.random.default_rng(0),
                               masking_rate=0.5)
        ids, mask = tok.encode_batch(["[ALM]"])
        out = masker.mask_batch(ids, mask)
        assert out.num_masked == 0


class TestRetrainerDegenerate:
    @pytest.fixture(scope="class")
    def stack(self):
        world = TelecomWorld.generate(seed=53, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        corpus = build_tele_corpus(world, seed=53)
        kg = build_tele_kg(world)
        episodes = world.simulate_episodes(3)
        trainer = TeleBertTrainer(corpus.sentences, seed=53, d_model=16,
                                  num_layers=1, num_heads=2, d_ff=32,
                                  max_len=20)
        trainer.train(steps=2)
        data = build_stage2_data(corpus, episodes, kg, seed=53,
                                 ke_negatives=2)
        model = KTeleBert.from_telebert(
            trainer,
            KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2),
            tag_names=data.tag_names, normalizer=data.normalizer,
            extra_vocabulary=data.vocabulary(), seed=53)
        return model, data

    def test_ke_phase_without_triples_raises(self, stack):
        """A KE-only phase with no triples must fail loudly, not silently."""
        model, data = stack
        empty = Stage2Data(causal_rows=data.causal_rows,
                           log_rows=data.log_rows, triple_rows=[],
                           normalizer=data.normalizer,
                           tag_names=data.tag_names)
        strategy = build_strategy("imtl", 10)
        retrainer = KTeleBertRetrainer(model, empty, strategy, seed=0,
                                       batch_size=2)
        with pytest.raises(RuntimeError):
            retrainer.train()  # hits the KE-only middle phase

    def test_pmtl_without_triples_still_trains_masking(self, stack):
        """PMTL degrades to mask-only when the KG stream is empty."""
        model, data = stack
        empty = Stage2Data(causal_rows=data.causal_rows,
                           log_rows=data.log_rows, triple_rows=[],
                           normalizer=data.normalizer,
                           tag_names=data.tag_names)
        strategy = build_strategy("pmtl", 2)
        retrainer = KTeleBertRetrainer(model, empty, strategy, seed=0,
                                       batch_size=2)
        log = retrainer.train()
        assert len(log.total) == 2
        assert all(v == 0.0 for v in log.ke)

    def test_gradient_clipping_keeps_training_stable(self, stack):
        """Even with an aggressive learning rate, losses must stay finite."""
        model, data = stack
        strategy = build_strategy("stl", 4)
        retrainer = KTeleBertRetrainer(model, data, strategy, seed=0,
                                       batch_size=2, learning_rate=0.5,
                                       grad_clip=1.0)
        log = retrainer.train()
        assert all(np.isfinite(v) for v in log.total)


class TestStage2Validation:
    def test_no_numeric_values_raises(self):
        """Stage-2 assembly requires at least one numeric observation."""
        world = TelecomWorld.generate(seed=59, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        corpus = build_tele_corpus(world, seed=59)
        kg = build_tele_kg(world)
        with pytest.raises(ValueError):
            # No episodes and max_logs=0 strips every numeric row... but KG
            # attributes still contribute; so empty the attribute path too by
            # passing no episodes and a KG without numeric attributes.
            from repro.kg import TeleKG
            build_stage2_data(corpus, [], TeleKG(), seed=0, ke_negatives=1)
