"""Gradient-correctness tests for the autograd primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, no_grad, randn, stack, tensor
from repro.tensor.gradcheck import check_gradients

RNG = np.random.default_rng(7)


def _t(shape, scale=1.0):
    return Tensor(RNG.normal(0, scale, size=shape), requires_grad=True)


class TestElementwise:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [_t((3, 4)), _t((3, 4))])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), [_t((3, 4)), _t((4,))])

    def test_add_scalar_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), [_t((3, 4)), _t(())])

    def test_sub(self):
        check_gradients(lambda a, b: (a - b).sum(), [_t((2, 5)), _t((2, 5))])

    def test_rsub(self):
        check_gradients(lambda a: (3.0 - a).sum(), [_t((4,))])

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), [_t((3, 3)), _t((3, 3))])

    def test_mul_broadcast_column(self):
        check_gradients(lambda a, b: (a * b).sum(), [_t((3, 4)), _t((3, 1))])

    def test_div(self):
        b = Tensor(RNG.uniform(1.0, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda a, b: (a / b).sum(), [_t((3, 4)), b])

    def test_neg(self):
        check_gradients(lambda a: (-a).sum(), [_t((5,))])

    def test_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        check_gradients(lambda a: (a ** 3).sum(), [a])

    def test_exp(self):
        check_gradients(lambda a: a.exp().sum(), [_t((3, 4), scale=0.5)])

    def test_log(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda a: a.log().sum(), [a])

    def test_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda a: a.sqrt().sum(), [a])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh().sum(), [_t((3, 4))])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid().sum(), [_t((3, 4))])

    def test_relu(self):
        a = Tensor(RNG.uniform(0.1, 1.0, size=(3, 4)) *
                   RNG.choice([-1.0, 1.0], size=(3, 4)), requires_grad=True)
        check_gradients(lambda a: a.relu().sum(), [a])

    def test_abs(self):
        a = Tensor(RNG.uniform(0.2, 1.0, size=(6,)) *
                   RNG.choice([-1.0, 1.0], size=(6,)), requires_grad=True)
        check_gradients(lambda a: a.abs().sum(), [a])

    def test_clip(self):
        a = Tensor(np.linspace(-2.0, 2.0, 9), requires_grad=True)
        check_gradients(lambda a: a.clip(-1.01, 1.01).sum(), [a])


class TestMatmul:
    def test_2d_2d(self):
        check_gradients(lambda a, b: (a @ b).sum(), [_t((3, 4)), _t((4, 5))])

    def test_batched(self):
        check_gradients(lambda a, b: (a @ b).sum(), [_t((2, 3, 4)), _t((2, 4, 5))])

    def test_broadcast_batch(self):
        check_gradients(lambda a, b: (a @ b).sum(), [_t((2, 3, 4)), _t((4, 5))])

    def test_4d_attention_shape(self):
        check_gradients(lambda a, b: (a @ b).sum(),
                        [_t((2, 2, 3, 4)), _t((2, 2, 4, 3))])

    def test_matvec(self):
        check_gradients(lambda a, b: (a @ b).sum(), [_t((3, 4)), _t((4,))])

    def test_vecmat(self):
        check_gradients(lambda a, b: (a @ b).sum(), [_t((4,)), _t((4, 3))])

    def test_vecvec(self):
        check_gradients(lambda a, b: a @ b, [_t((4,)), _t((4,))])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [_t((3, 4))])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0).sum(), [_t((3, 4))])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True).sum(), [_t((3, 4))])

    def test_sum_negative_axis(self):
        check_gradients(lambda a: a.sum(axis=-1).sum(), [_t((2, 3, 4))])

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [_t((3, 4))])

    def test_mean_axis(self):
        check_gradients(lambda a: a.mean(axis=-1, keepdims=True).sum(), [_t((2, 5))])

    def test_max_all(self):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda a: a.max(), [a])

    def test_max_axis(self):
        a = Tensor(RNG.permutation(12).astype(float).reshape(3, 4),
                   requires_grad=True)
        check_gradients(lambda a: a.max(axis=1).sum(), [a])

    def test_min(self):
        a = Tensor(RNG.permutation(12).astype(float).reshape(3, 4),
                   requires_grad=True)
        check_gradients(lambda a: a.min(axis=0).sum(), [a])


class TestShapeOps:
    def test_reshape(self):
        check_gradients(lambda a: (a.reshape(6, 2) ** 2).sum(), [_t((3, 4))])

    def test_transpose_default(self):
        check_gradients(lambda a: (a.T ** 2).sum(), [_t((3, 4))])

    def test_transpose_axes(self):
        check_gradients(lambda a: (a.transpose(1, 0, 2) ** 2).sum(), [_t((2, 3, 4))])

    def test_swapaxes(self):
        check_gradients(lambda a: (a.swapaxes(0, 2) ** 2).sum(), [_t((2, 3, 4))])

    def test_getitem_slice(self):
        check_gradients(lambda a: (a[1:, :2] ** 2).sum(), [_t((3, 4))])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: (a[idx] ** 2).sum(), [_t((3, 4))])

    def test_take_rows_repeated_indices(self):
        idx = np.array([[0, 1], [1, 1]])
        check_gradients(lambda a: (a.take_rows(idx) ** 2).sum(), [_t((3, 4))])

    def test_expand_squeeze(self):
        check_gradients(lambda a: (a.expand_dims(1).squeeze(1) ** 2).sum(),
                        [_t((3, 4))])

    def test_concat(self):
        check_gradients(lambda a, b: (concat([a, b], axis=1) ** 2).sum(),
                        [_t((3, 2)), _t((3, 4))])

    def test_stack(self):
        check_gradients(lambda a, b: (stack([a, b], axis=0) ** 2).sum(),
                        [_t((3, 2)), _t((3, 2))])


class TestGraphSemantics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * 3.0) + (a * 4.0)
        out.backward(np.ones(1))
        assert np.allclose(a.grad, [7.0])

    def test_diamond_graph(self):
        a = Tensor([1.5], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        out = (b * c).sum()
        out.backward()
        # d/da (2a * 3a) = 12 a
        assert np.allclose(a.grad, [18.0])

    def test_deep_chain(self):
        a = Tensor([0.5], requires_grad=True)
        x = a
        for _ in range(50):
            x = x * 1.01
        x.sum().backward()
        assert np.allclose(a.grad, [1.01 ** 50], rtol=1e-10)

    def test_backward_requires_scalar(self):
        a = _t((3,))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_nongrad_tensor_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a.detach() * a).sum()
        out.backward()
        assert np.allclose(a.grad, [2.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_second_backward_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        assert np.allclose(a.grad, [4.0])


class TestConstructors:
    def test_tensor_factory(self):
        t = tensor([1, 2, 3], requires_grad=True)
        assert t.shape == (3,)
        assert t.requires_grad

    def test_randn_reproducible(self):
        a = randn((4, 4), rng=np.random.default_rng(0))
        b = randn((4, 4), rng=np.random.default_rng(0))
        assert np.array_equal(a.data, b.data)

    def test_repr(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))

    def test_item(self):
        assert tensor([3.5]).item() == 3.5


class TestTrig:
    def test_sin_gradient(self):
        check_gradients(lambda a: a.sin().sum(), [_t((3, 4))])

    def test_cos_gradient(self):
        check_gradients(lambda a: a.cos().sum(), [_t((3, 4))])

    def test_pythagorean_identity(self):
        a = _t((5,), scale=3.0)
        total = (a.sin() ** 2 + a.cos() ** 2).data
        assert np.allclose(total, 1.0)
