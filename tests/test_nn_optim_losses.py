"""Tests for optimizers, schedules, and KTeleBERT-specific losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.losses import numeric_contrastive_loss
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


def _quadratic_param(start=5.0):
    return nn.Parameter(np.array([start]))


def _minimise(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestOptimizers:
    def test_sgd_minimises_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimise(nn.SGD([p], lr=0.1), p)) < 1e-3

    def test_sgd_momentum_minimises(self):
        p = _quadratic_param()
        assert abs(_minimise(nn.SGD([p], lr=0.05, momentum=0.9), p)) < 1e-3

    def test_adam_minimises_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimise(nn.Adam([p], lr=0.1), p, steps=300)) < 1e-2

    def test_adamw_decays_weights(self):
        # With zero gradient signal, AdamW should still shrink the weight.
        p = nn.Parameter(np.array([1.0]))
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        for _ in range(10):
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_adam_skips_none_grads(self):
        p1, p2 = _quadratic_param(), _quadratic_param()
        opt = nn.Adam([p1, p2], lr=0.1)
        (p1 * p1).sum().backward()
        before = p2.data.copy()
        opt.step()
        assert np.array_equal(p2.data, before)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert abs(norm - 5.0) < 1e-9
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-6

    def test_clip_noop_below_threshold(self):
        p = nn.Parameter(np.array([0.3]))
        p.grad = np.array([0.3])
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3])


class TestSchedule:
    def test_warmup_then_decay(self):
        p = _quadratic_param()
        opt = nn.SGD([p], lr=0.0)
        sched = nn.LinearWarmupSchedule(opt, peak_lr=1.0, warmup_steps=10,
                                        total_steps=100)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[4] < lrs[9]                    # rising during warmup
        assert abs(max(lrs) - 1.0) < 0.11         # reaches peak
        assert lrs[-1] < 0.02                     # decays to ~0
        assert opt.lr == lrs[-1]

    def test_invalid_args(self):
        p = _quadratic_param()
        opt = nn.SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            nn.LinearWarmupSchedule(opt, 1.0, warmup_steps=-1, total_steps=10)


class TestMarginRanking:
    def test_zero_when_separated(self):
        pos = Tensor(np.array([0.0, 0.0]))
        neg = Tensor(np.array([5.0, 6.0]))
        assert nn.margin_ranking_loss(pos, neg, margin=1.0).data == 0.0

    def test_positive_when_violated(self):
        pos = Tensor(np.array([2.0]))
        neg = Tensor(np.array([1.0]))
        assert np.allclose(nn.margin_ranking_loss(pos, neg, margin=1.0).data, 2.0)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        pos = Tensor(rng.normal(size=4), requires_grad=True)
        neg = Tensor(rng.normal(size=4) + 0.3, requires_grad=True)
        check_gradients(lambda p, n: nn.margin_ranking_loss(p, n), [pos, neg])


class TestInfoNCE:
    def test_aligned_pairs_have_low_loss(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 16)))
        loss_same = nn.info_nce(x, x, temperature=0.05)
        y = Tensor(rng.normal(size=(8, 16)))
        loss_rand = nn.info_nce(x, y, temperature=0.05)
        assert loss_same.data < loss_rand.data

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.info_nce(Tensor(np.zeros((2, 4))), Tensor(np.zeros((3, 4))))

    def test_gradient(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        check_gradients(lambda a, b: nn.info_nce(a, b, temperature=0.5), [a, b])


class TestNumericContrastive:
    def test_small_batch_returns_zero(self):
        emb = Tensor(np.zeros((2, 4)))
        assert numeric_contrastive_loss(emb, np.array([0.1, 0.9])).data == 0.0

    def test_value_ordered_embeddings_score_better(self):
        # Embeddings laid out along a line in value order should have lower
        # loss than shuffled embeddings.
        values = np.linspace(0, 1, 16)
        line = np.stack([values * 10, np.zeros(16)], axis=1)
        ordered = numeric_contrastive_loss(Tensor(line), values)
        rng = np.random.default_rng(0)
        shuffled = numeric_contrastive_loss(
            Tensor(rng.permutation(line)), values)
        assert ordered.data < shuffled.data

    def test_gradient(self):
        rng = np.random.default_rng(2)
        emb = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        values = rng.random(5)
        check_gradients(
            lambda e: numeric_contrastive_loss(e, values, temperature=0.5),
            [emb], atol=1e-4)


class TestAutomaticWeightedLoss:
    def test_initial_weighting_is_half(self):
        awl = nn.AutomaticWeightedLoss(3)
        assert np.allclose(awl.weights(), 0.5)

    def test_combines_losses(self):
        awl = nn.AutomaticWeightedLoss(2)
        out = awl([Tensor(2.0), Tensor(4.0)])
        # 0.5*(2+4) + 2*log(2)
        assert np.allclose(out.data, 3.0 + 2 * np.log(2.0))

    def test_wrong_count_raises(self):
        awl = nn.AutomaticWeightedLoss(2)
        with pytest.raises(ValueError):
            awl([Tensor(1.0)])

    def test_mu_grows_for_noisy_task(self):
        """Training should raise mu (lower weight) for a large constant loss."""
        awl = nn.AutomaticWeightedLoss(2)
        opt = nn.Adam(awl.parameters(), lr=0.05)
        for _ in range(100):
            opt.zero_grad()
            total = awl([Tensor(100.0), Tensor(0.01)])
            total.backward()
            opt.step()
        assert awl.mu.data[0] > awl.mu.data[1]

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            nn.AutomaticWeightedLoss(0)


class TestOrthogonalRegularizer:
    def test_zero_for_orthogonal_matrix(self):
        eye = Tensor(np.eye(4))
        assert np.allclose(nn.orthogonal_regularizer([eye]).data, 0.0)

    def test_positive_for_non_orthogonal(self):
        w = Tensor(np.ones((3, 3)))
        assert nn.orthogonal_regularizer([w]).data > 0

    def test_empty_returns_zero(self):
        assert nn.orthogonal_regularizer([]).data == 0.0

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            nn.orthogonal_regularizer([Tensor(np.ones((2, 3)))])

    def test_gradient_pushes_towards_orthogonality(self):
        rng = np.random.default_rng(0)
        w = nn.Parameter(rng.normal(0, 0.5, size=(4, 4)) + np.eye(4))
        opt = nn.Adam([w], lr=0.01)
        initial = float(nn.orthogonal_regularizer([w]).data)
        for _ in range(200):
            opt.zero_grad()
            loss = nn.orthogonal_regularizer([w])
            loss.backward()
            opt.step()
        assert float(nn.orthogonal_regularizer([w]).data) < initial * 0.01


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.01, max_value=10.0),
       st.floats(min_value=0.01, max_value=10.0))
def test_awl_finite_for_positive_losses(l1, l2):
    awl = nn.AutomaticWeightedLoss(2)
    out = awl([Tensor(l1), Tensor(l2)])
    assert np.isfinite(out.data)
