"""End-to-end tests for KTeleBERT stage-2: data assembly, model, retraining."""

import numpy as np
import pytest

from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.models import (
    KTeleBert,
    KTeleBertConfig,
    NumericRow,
    TeleBertTrainer,
    TripleRow,
)
from repro.tokenization import mine_special_tokens, basic_tokenize
from repro.training import build_strategy
from repro.training.retrainer import KTeleBertRetrainer
from repro.training.stage2 import build_stage2_data
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def setup():
    """A miniature full pipeline shared by the tests in this module."""
    world = TelecomWorld.generate(seed=11, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=8)
    corpus = build_tele_corpus(world, seed=11)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(4)
    trainer = TeleBertTrainer(corpus.sentences, seed=11, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32, max_len=24,
                              batch_size=8)
    trainer.train(steps=5)
    data = build_stage2_data(corpus, episodes, kg, seed=11, ke_negatives=3)
    model = KTeleBert.from_telebert(
        trainer, KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2,
                                 ke_negatives=3),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=11)
    return world, corpus, kg, episodes, data, model


class TestStage2Data:
    def test_three_datasets_nonempty(self, setup):
        _, _, _, _, data, _ = setup
        stats = data.describe()
        assert stats["causal_sentences"] > 0
        assert stats["machine_logs"] > 0
        assert stats["knowledge_triples"] > 0

    def test_numeric_rows_present(self, setup):
        _, _, _, _, data, _ = setup
        numeric = [r for r in data.log_rows if isinstance(r, NumericRow)]
        assert numeric
        for row in numeric[:10]:
            assert "[NUM]" in row.text
            assert data.normalizer.knows(row.tag) or True  # tag seen or global

    def test_normalizer_fitted_on_all_tags(self, setup):
        _, _, _, _, data, _ = setup
        numeric = [r for r in data.log_rows if isinstance(r, NumericRow)]
        for row in numeric:
            assert data.normalizer.knows(row.tag)

    def test_triples_have_negatives(self, setup):
        _, _, _, _, data, _ = setup
        for row in data.triple_rows[:20]:
            assert len(row.negatives) == 3

    def test_max_limits_respected(self, setup):
        world, corpus, kg, episodes, _, _ = setup
        data = build_stage2_data(corpus, episodes, kg, seed=0,
                                 ke_negatives=2, max_logs=10, max_triples=15)
        assert len(data.log_rows) == 10
        assert len(data.triple_rows) == 15

    def test_vocabulary_covers_rows(self, setup):
        _, _, _, _, data, _ = setup
        vocab = set(data.vocabulary())
        for row in data.mask_rows[:20]:
            for token in basic_tokenize(row.text):
                assert token in vocab


class TestKTeleBertModel:
    def test_prompt_tokens_are_specials(self, setup):
        _, _, _, _, _, model = setup
        vocab = model.tokenizer.vocab
        for token in ("[ALM]", "[KPI]", "[NUM]", "[ENT]", "[REL]"):
            assert vocab.is_special(token)

    def test_weights_copied_from_telebert(self, setup):
        _, _, _, _, _, model = setup
        # Encoder attention weights must be pre-trained (non-default) values:
        # compare against a fresh random init magnitude check is flaky, so we
        # verify the vocab grew but layer shapes match.
        assert model.mlm_model.config.vocab_size == len(model.tokenizer.vocab)

    def test_encode_texts_shape(self, setup):
        _, _, _, _, _, model = setup
        out = model.encode_texts(["[ALM] The link is down", "[DOC] hello"])
        assert out.shape == (2, 16)

    def test_encode_numeric_rows_uses_anenc(self, setup):
        _, _, _, _, data, model = setup
        numeric = [r for r in data.log_rows if isinstance(r, NumericRow)][:2]
        with_anenc = model.encode(numeric)
        model.config.use_anenc = False
        without = model.encode(numeric)
        model.config.use_anenc = True
        assert not np.allclose(with_anenc, without)

    def test_different_values_change_encoding(self, setup):
        _, _, _, _, data, model = setup
        base = [r for r in data.log_rows if isinstance(r, NumericRow)][0]
        low = NumericRow(text=base.text, tag=base.tag, value=0.0)
        high = NumericRow(text=base.text, tag=base.tag, value=1e6)
        out = model.encode([low, high])
        assert not np.allclose(out[0], out[1])

    def test_masked_lm_loss_with_numeric(self, setup):
        _, _, _, _, data, model = setup
        from repro.training import DynamicMasker
        masker = DynamicMasker(model.tokenizer.vocab,
                               np.random.default_rng(0), masking_rate=0.4)
        rows = data.mask_rows[:6]
        loss, numeric = model.masked_lm_loss(rows, masker)
        assert np.isfinite(loss.data)

    def test_ke_loss_finite(self, setup):
        _, _, _, _, data, model = setup
        loss = model.ke_loss(data.triple_rows[:4])
        assert np.isfinite(loss.data)

    def test_ke_loss_validation(self, setup):
        _, _, _, _, data, model = setup
        with pytest.raises(ValueError):
            model.ke_loss([])
        bad = TripleRow(head="a", relation="r", tail="b", negatives=())
        with pytest.raises(ValueError):
            model.ke_loss([bad])


class TestRetrainer:
    @pytest.mark.parametrize("strategy_name", ["stl", "pmtl", "imtl"])
    def test_strategies_run(self, setup, strategy_name):
        _, _, _, _, data, model = setup
        strategy = build_strategy(strategy_name, 6)
        retrainer = KTeleBertRetrainer(model, data, strategy, seed=0,
                                       batch_size=4, ke_batch_size=2)
        log = retrainer.train()
        assert len(log.total) == 6
        assert all(np.isfinite(v) for v in log.total)

    def test_schedule_exhaustion_raises(self, setup):
        _, _, _, _, data, model = setup
        strategy = build_strategy("stl", 1)
        retrainer = KTeleBertRetrainer(model, data, strategy, seed=0,
                                       batch_size=2)
        retrainer.train()
        with pytest.raises(RuntimeError):
            retrainer.train_step()

    def test_stl_never_touches_ke(self, setup):
        _, _, _, _, data, model = setup
        strategy = build_strategy("stl", 3)
        retrainer = KTeleBertRetrainer(model, data, strategy, seed=0,
                                       batch_size=2)
        log = retrainer.train()
        assert all(v == 0.0 for v in log.ke)


class TestSpecialTokenMining:
    def test_mining_from_tele_corpus(self, setup):
        _, corpus, _, _, _, _ = setup
        tokenised = [basic_tokenize(s) for s in corpus.sentences]
        mined = mine_special_tokens(tokenised, base_vocabulary={"the", "of"},
                                    min_frequency=5, num_merges=300)
        # NE type abbreviations should be among the mined tokens.
        assert any(t.isupper() and 2 <= len(t) <= 4 for t in mined)
