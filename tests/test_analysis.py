"""Tests for embedding diagnostics and ASCII plotting."""

import numpy as np
import pytest

from repro.analysis import (
    anisotropy,
    ascii_histogram,
    ascii_scatter,
    nearest_neighbors,
    silhouette_score,
    theme_separation,
    value_order_correlation,
)


def _clustered_vectors():
    """Two well-separated clusters of 3 vectors each."""
    rng = np.random.default_rng(0)
    a = rng.normal(0, 0.05, size=(3, 8)) + np.array([5.0] + [0.0] * 7)
    b = rng.normal(0, 0.05, size=(3, 8)) + np.array([0.0, 5.0] + [0.0] * 6)
    return np.vstack([a, b]), ["a"] * 3 + ["b"] * 3


class TestAnisotropy:
    def test_collapsed_space_near_one(self):
        vectors = np.tile(np.array([1.0, 2.0, 3.0]), (5, 1))
        assert anisotropy(vectors) > 0.999

    def test_orthogonal_space_near_zero(self):
        assert abs(anisotropy(np.eye(6))) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            anisotropy(np.ones((1, 4)))
        with pytest.raises(ValueError):
            anisotropy(np.ones(4))


class TestThemeSeparation:
    def test_separated_clusters_positive(self):
        vectors, labels = _clustered_vectors()
        assert theme_separation(vectors, labels) > 0.5

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(40, 16))
        labels = ["a", "b"] * 20
        assert abs(theme_separation(vectors, labels)) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            theme_separation(np.eye(3), ["a", "a"])
        with pytest.raises(ValueError):
            theme_separation(np.eye(3), ["a", "a", "a"])  # no cross pairs


class TestSilhouette:
    def test_separated_clusters_high(self):
        vectors, labels = _clustered_vectors()
        assert silhouette_score(vectors, labels) > 0.5

    def test_needs_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.eye(3), ["a", "a", "a"])

    def test_singletons_skipped(self):
        vectors, labels = _clustered_vectors()
        labels = labels[:-1] + ["c"]  # one singleton cluster
        score = silhouette_score(vectors, labels)
        assert np.isfinite(score)


class TestNearestNeighbors:
    def test_returns_sorted_neighbours(self):
        vectors, _ = _clustered_vectors()
        names = [f"v{i}" for i in range(6)]
        out = nearest_neighbors(vectors, names, query_index=0, k=3)
        assert len(out) == 3
        sims = [s for _, s in out]
        assert sims == sorted(sims, reverse=True)
        # Same-cluster vectors come first.
        assert out[0][0] in ("v1", "v2")

    def test_excludes_self(self):
        vectors, _ = _clustered_vectors()
        names = [f"v{i}" for i in range(6)]
        out = nearest_neighbors(vectors, names, query_index=2, k=5)
        assert all(name != "v2" for name, _ in out)

    def test_index_validation(self):
        with pytest.raises(IndexError):
            nearest_neighbors(np.eye(3), ["a", "b", "c"], query_index=9)


class TestValueOrderCorrelation:
    def test_ordered_arc_is_high(self):
        # Points on a unit arc: cosine distance is monotone in |Δvalue|.
        values = np.linspace(0, 1, 20)
        embeddings = np.stack([np.cos(values), np.sin(values)], axis=1)
        assert value_order_correlation(values, embeddings) > 0.95

    def test_shuffled_is_lower(self):
        rng = np.random.default_rng(0)
        values = np.linspace(0, 1, 20)
        embeddings = rng.normal(size=(20, 8))
        assert value_order_correlation(values, embeddings) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            value_order_correlation(np.array([1.0, 2.0]), np.eye(2))


class TestAsciiPlots:
    def test_scatter_renders_grid(self):
        x = np.linspace(0, 1, 30)
        out = ascii_scatter(x, x ** 2, values=x, width=40, height=10,
                            title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("+")
        assert len(lines) == 1 + 1 + 10 + 1 + 1

    def test_scatter_constant_axis_ok(self):
        out = ascii_scatter(np.zeros(5), np.arange(5.0))
        assert "|" in out

    def test_scatter_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(0), np.zeros(0))

    def test_histogram_counts(self):
        out = ascii_histogram(np.concatenate([np.zeros(10), np.ones(5)]),
                              bins=2)
        assert " 10" in out and " 5" in out

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))
        with pytest.raises(ValueError):
            ascii_histogram(np.ones(3), bins=0)
