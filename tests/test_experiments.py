"""Tests for the experiment layer: formatting, averaging, pipeline, report."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentPipeline,
    PipelineConfig,
    average_tables,
    format_table,
    generate_report,
    run_table2,
    run_table3,
    run_table5,
    run_table7,
)
from repro.experiments.tables import TableResult


@pytest.fixture(scope="module")
def micro_pipeline():
    """A pipeline small enough for test-time model building."""
    return ExperimentPipeline(PipelineConfig(
        seed=0, num_episodes=20, stage1_steps=3, stage2_steps=4,
        generic_sentences=80, alarms_per_theme=2, kpis_per_theme=2,
        topology_nodes=8))


class TestFormatTable:
    def _result(self):
        return TableResult(
            title="T", columns=["A", "B"],
            rows={"m1": {"A": 1.0, "B": 2.0}},
            paper={"m1": {"A": 1.5, "B": float("nan")}},
            notes="hello")

    def test_contains_sections(self):
        text = format_table(self._result())
        assert "[measured]" in text and "[paper]" in text
        assert "note: hello" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(self._result())
        assert "-" in text.splitlines()[-2]

    def test_precision(self):
        text = format_table(self._result(), precision=3)
        assert "1.000" in text


class TestAverageTables:
    def _result(self, value):
        return TableResult(title="T", columns=["A"],
                           rows={"m": {"A": value}})

    def test_mean_of_rows(self):
        merged = average_tables([self._result(1.0), self._result(3.0)])
        assert merged.rows["m"]["A"] == 2.0
        assert "averaged over 2 seeds" in merged.notes

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_tables([])

    def test_shape_mismatch_raises(self):
        other = TableResult(title="T", columns=["B"],
                            rows={"m": {"B": 1.0}})
        with pytest.raises(ValueError):
            average_tables([self._result(1.0), other])


class TestPipeline:
    def test_artifacts_cached(self, micro_pipeline):
        assert micro_pipeline.world is micro_pipeline.world
        assert micro_pipeline.corpus is micro_pipeline.corpus

    def test_stats_tables_run(self, micro_pipeline):
        for fn in (run_table2, run_table3, run_table5, run_table7):
            result = fn(micro_pipeline)
            assert result.rows
            assert format_table(result)

    def test_providers_cover_all_method_rows(self, micro_pipeline):
        providers = micro_pipeline.providers()
        labels = [p.label for p in providers]
        assert labels == ["Random", "MacBERT", "TeleBERT", "KTeleBERT-STL",
                          "w/o ANEnc", "KTeleBERT-PMTL", "KTeleBERT-IMTL"]

    def test_word_embedding_variant(self, micro_pipeline):
        providers = micro_pipeline.providers(include_word_embeddings=True)
        assert providers[0].label == "Word Embeddings"

    def test_special_tokens_mined(self, micro_pipeline):
        mined = micro_pipeline.tele_special_tokens
        assert isinstance(mined, list)
        assert all(2 <= len(t) <= 4 for t in mined)

    def test_variants_share_tokenizer_but_not_weights(self, micro_pipeline):
        stl = micro_pipeline.ktelebert_stl
        pmtl = micro_pipeline.ktelebert_pmtl
        assert stl.tokenizer is pmtl.tokenizer
        a = stl.mlm_model.bert.token_embedding.weight.data
        b = pmtl.mlm_model.bert.token_embedding.weight.data
        assert a.shape == b.shape
        assert not np.allclose(a, b)  # different strategies -> different weights


class TestReport:
    def test_generates_markdown(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table4_rca.txt").write_text("Table IV contents")
        (results / "ablation_simcse.txt").write_text("ablation contents")
        out = generate_report(results, tmp_path / "EXPERIMENTS.md")
        text = out.read_text()
        assert "Table IV contents" in text
        assert "ablation contents" in text
        assert "missing" in text  # other sections absent

    def test_all_sections_present_when_files_exist(self, tmp_path):
        from repro.experiments.report import SECTIONS
        results = tmp_path / "results"
        results.mkdir()
        for filename, _, _ in SECTIONS:
            (results / filename).write_text(f"contents of {filename}")
        text = generate_report(results, tmp_path / "E.md").read_text()
        assert "missing" not in text
        for filename, title, _ in SECTIONS:
            assert title in text


class TestResultTablesMicro:
    """End-to-end smoke of the result-table harnesses at micro scale."""

    def test_table8_and_fig10_run(self, micro_pipeline):
        from repro.experiments import run_fig10, run_table8

        table8 = run_table8(micro_pipeline)
        assert set(table8.rows) == {
            "Random", "MacBERT", "TeleBERT", "KTeleBERT-STL", "w/o ANEnc",
            "KTeleBERT-PMTL", "KTeleBERT-IMTL"}
        for row in table8.rows.values():
            assert all(np.isfinite(v) for v in row.values())

        fig10 = run_fig10(micro_pipeline, num_points=16)
        assert set(fig10.value_distance_correlation) == {"with L_nc",
                                                         "w/o L_nc"}
        for projection in fig10.projections.values():
            assert projection.shape[1] == 3

    def test_table6_runs(self, micro_pipeline):
        from repro.experiments import run_table6

        table6 = run_table6(micro_pipeline)
        assert "Word Embeddings" in table6.rows
        for row in table6.rows.values():
            assert all(0.0 <= v <= 100.0 for v in row.values())
