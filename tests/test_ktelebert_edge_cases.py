"""Edge-case tests for KTeleBERT input handling."""

import numpy as np
import pytest

from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.models import KTeleBert, KTeleBertConfig, NumericRow, TeleBertTrainer, TextRow
from repro.training import DynamicMasker
from repro.training.stage2 import build_stage2_data
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def model():
    world = TelecomWorld.generate(seed=47, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    corpus = build_tele_corpus(world, seed=47)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(3)
    trainer = TeleBertTrainer(corpus.sentences, seed=47, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32, max_len=20)
    trainer.train(steps=2)
    data = build_stage2_data(corpus, episodes, kg, seed=47, ke_negatives=2)
    return KTeleBert.from_telebert(
        trainer, KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=47)


class TestPrepareEdgeCases:
    def test_numeric_row_with_truncated_num_token(self, model):
        """[NUM] pushed past max_length degrades to plain text, no crash."""
        long_prefix = " ".join(["word"] * 50)
        row = NumericRow(text=f"[KPI] {long_prefix} | [NUM] 5.0",
                         tag="some tag", value=5.0)
        prep = model._prepare([row])
        assert len(prep["numeric_positions"]) == 0
        out = model.encode([row])
        assert out.shape == (1, 16)

    def test_unseen_tag_uses_global_normalisation(self, model):
        row = NumericRow(text="[KPI] brand new indicator | [NUM] 3.0",
                         tag="brand new indicator", value=3.0)
        out = model.encode([row])
        assert np.isfinite(out).all()

    def test_mixed_batch_text_and_numeric(self, model):
        rows = [TextRow("[DOC] plain sentence"),
                NumericRow(text="[KPI] rate | [NUM] 0.5", tag="rate",
                           value=0.5),
                TextRow("[ALM] another alarm")]
        prep = model._prepare(rows)
        assert prep["numeric_rows"] == [1]
        out = model.encode(rows)
        assert out.shape == (3, 16)

    def test_value_token_excluded_from_masking(self, model):
        row = NumericRow(text="[KPI] rate | [NUM] 0.5", tag="rate", value=0.5)
        prep = model._prepare([row])
        position = int(prep["numeric_positions"][0, 1])
        assert position in prep["excluded"][0]
        assert position + 1 in prep["excluded"][0]

    def test_empty_text_row(self, model):
        out = model.encode([TextRow("")])
        assert out.shape == (1, 16)

    def test_masked_lm_loss_on_pure_text_batch(self, model):
        masker = DynamicMasker(model.tokenizer.vocab,
                               np.random.default_rng(0), masking_rate=0.4)
        loss, numeric = model.masked_lm_loss(
            [TextRow("[DOC] the quick check"), TextRow("[DOC] another")],
            masker)
        assert numeric is None  # no numeric rows -> no L_num
        assert np.isfinite(loss.data)

    def test_anenc_disabled_skips_numeric_loss(self, model):
        masker = DynamicMasker(model.tokenizer.vocab,
                               np.random.default_rng(0), masking_rate=0.4)
        row = NumericRow(text="[KPI] rate | [NUM] 0.5", tag="rate", value=0.5)
        model.config.use_anenc = False
        try:
            loss, numeric = model.masked_lm_loss([row], masker)
            assert numeric is None
        finally:
            model.config.use_anenc = True

    def test_encode_is_eval_mode(self, model):
        """encode() must be deterministic (dropout off) and restore training."""
        row = TextRow("[DOC] determinism check")
        a = model.encode([row])
        b = model.encode([row])
        assert np.allclose(a, b)
        assert model.mlm_model.bert.training  # training mode restored
