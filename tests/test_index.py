"""Tests for the sharded mmap ANN retrieval tier (:mod:`repro.index`).

Covers the index itself (build/query determinism, recall against the
brute-force oracle, incremental add/flush with shadowing, crash-safe
generation swaps including a real ``SIGKILL`` mid-build), the
:class:`IndexedEmbeddingProvider` glue onto the serving store, the
``python -m repro index`` CLI, and the retrieval-candidate hooks the
task serve adapters expose.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.index import (
    DEFAULT_NUM_SHARDS,
    FingerprintMismatch,
    IndexedEmbeddingProvider,
    VectorIndex,
    coarse_cluster,
    default_nlist,
    exact_topk,
    index_main,
    shard_for_name,
    synthetic_queries,
    synthetic_world,
)
from repro.serving import EmbeddingStore, PersistentProvider
from repro.service import RandomProvider


def _world(count=2000, dim=16, seed=0):
    names, vectors = synthetic_world(count, dim, seed=seed)
    return names, vectors, dict(zip(names, vectors))


# ----------------------------------------------------------------------
# Clustering / sharding primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_shard_for_name_is_stable_and_in_range(self):
        routed = {shard_for_name(f"entity-{i}", 8) for i in range(200)}
        assert routed <= set(range(8))
        assert len(routed) > 1           # actually spreads
        # process-stable contract: a pinned value, not hash()
        assert shard_for_name("alarm: link down", 4) == \
            shard_for_name("alarm: link down", 4)

    def test_coarse_cluster_deterministic_and_covering(self):
        _, vectors, _ = _world(300, 8)
        c1, a1 = coarse_cluster(vectors, 16, seed=3)
        c2, a2 = coarse_cluster(vectors, 16, seed=3)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_allclose(c1, c2)
        assert a1.shape == (300,)
        assert set(np.unique(a1)) <= set(range(16))

    def test_default_nlist_monotone_and_capped(self):
        assert default_nlist(1) == 1
        assert default_nlist(100) <= default_nlist(10_000)
        assert default_nlist(10**9) == 1024


# ----------------------------------------------------------------------
# Build / query
# ----------------------------------------------------------------------
class TestVectorIndex:
    def test_build_query_roundtrip_and_recall(self, tmp_path):
        names, vectors, mapping = _world()
        index = VectorIndex(tmp_path, fingerprint="fp")
        assert index.build(mapping) == len(names)
        queries = synthetic_queries(vectors, 50, seed=1)
        oracle = exact_topk(vectors, names, queries, 10)
        answers = index.query(queries, k=10)
        overlap = sum(
            sum(1 for n, _ in want if n in {m for m, _ in got})
            for got, want in zip(answers, oracle))
        assert overlap / (50 * 10) >= 0.95
        # scores are cosine: sorted descending, within [-1, 1]
        for hits in answers:
            scores = [s for _, s in hits]
            assert scores == sorted(scores, reverse=True)
            assert all(-1.001 <= s <= 1.001 for s in scores)

    def test_query_results_deterministic_across_rebuilds(self, tmp_path):
        names, vectors, mapping = _world(800, 8)
        queries = synthetic_queries(vectors, 20, seed=2)
        runs = []
        for sub in ("a", "b"):
            index = VectorIndex(tmp_path / sub, fingerprint="fp")
            index.build(mapping)
            runs.append(index.query(queries, k=5))
        assert runs[0] == runs[1]

    def test_full_probe_matches_exact_scan(self, tmp_path):
        names, vectors, mapping = _world(500, 8)
        index = VectorIndex(tmp_path, fingerprint="fp", nprobe=10_000)
        index.build(mapping)
        queries = synthetic_queries(vectors, 25, seed=4)
        oracle = exact_topk(vectors, names, queries, 5)
        for got, want in zip(index.query(queries, k=5), oracle):
            assert [n for n, _ in got] == [n for n, _ in want]

    def test_single_vector_query_shape(self, tmp_path):
        names, vectors, mapping = _world(100, 8)
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.build(mapping)
        [hits] = index.query(vectors[0], k=3)
        assert hits[0][0] == names[0]

    def test_reopen_serves_persisted_generation(self, tmp_path):
        names, vectors, mapping = _world(200, 8)
        VectorIndex(tmp_path, fingerprint="fp").build(mapping)
        reopened = VectorIndex(tmp_path, fingerprint="fp")
        assert len(reopened) == 200
        assert names[7] in reopened
        [hits] = reopened.query(vectors[7], k=1)
        assert hits[0][0] == names[7]

    def test_fingerprint_mismatch_refused(self, tmp_path):
        _, _, mapping = _world(50, 8)
        VectorIndex(tmp_path, fingerprint="ckpt-a").build(mapping)
        with pytest.raises(FingerprintMismatch):
            VectorIndex(tmp_path, fingerprint="ckpt-b")

    def test_dim_and_validation_errors(self, tmp_path):
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.build({"a": np.ones(8), "b": -np.ones(8)})
        with pytest.raises(ValueError):
            index.query(np.ones(9), k=1)
        with pytest.raises(ValueError):
            index.query(np.ones(8), k=0)
        with pytest.raises(ValueError):
            VectorIndex(tmp_path / "x", num_shards=0)
        with pytest.raises(ValueError):
            VectorIndex(tmp_path / "y", nprobe=0)

    def test_empty_index_answers_empty(self, tmp_path):
        index = VectorIndex(tmp_path, fingerprint="fp")
        assert index.query(np.ones(4), k=3) == [[]]
        assert len(index) == 0
        assert index.get("nope") is None


class TestAddFlush:
    def test_pending_answers_immediately_and_shadows(self, tmp_path):
        names, vectors, mapping = _world(300, 8)
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.build(mapping)
        # a brand-new name is queryable before any flush
        fresh = vectors[0] + 0.01
        index.add({"fresh-entity": fresh})
        [hits] = index.query(fresh, k=2)
        assert hits[0][0] == "fresh-entity"
        # a same-name add shadows the shard row it replaces: the buffered
        # (negated) vector answers, the old shard row never does
        index.add({names[5]: -vectors[5]})
        [hits] = index.query(-vectors[5], k=1)
        assert hits[0][0] == names[5]
        assert hits[0][1] == pytest.approx(1.0, abs=1e-5)
        [hits] = index.query(vectors[5], k=10)
        assert names[5] not in {n for n, _ in hits}

    def test_flush_persists_and_only_rewrites_affected_shards(
            self, tmp_path):
        names, vectors, mapping = _world(300, 8)
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.build(mapping)
        before = {s.stem for s in index._shards if s is not None}
        index.add({"added-one": vectors[0] + 0.02})
        assert index.flush() == 1
        after = {s.stem for s in index._shards if s is not None}
        touched = shard_for_name("added-one", index.num_shards)
        changed = before.symmetric_difference(after)
        # exactly one shard got a new generation file
        assert len(changed & after) == 1
        assert any(stem.endswith(f"-{touched:04d}") for stem in changed)
        reopened = VectorIndex(tmp_path, fingerprint="fp")
        assert "added-one" in reopened
        assert reopened.flush() == 0

    def test_add_then_build_drops_pending(self, tmp_path):
        _, vectors, mapping = _world(60, 8)
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.add({"doomed": vectors[0]})
        index.build(mapping)
        assert "doomed" not in index


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkill_mid_build_preserves_previous_generation(
            self, tmp_path):
        names, vectors, mapping = _world(200, 8)
        index = VectorIndex(tmp_path, fingerprint="fp")
        index.build(mapping)
        generation = index._generation

        # A child process starts a full rebuild with different data and
        # SIGKILLs itself after shard files are written but *before* the
        # manifest commit point.
        script = f"""
import os, signal
import numpy as np
import repro.index.index as index_mod
from repro.index import VectorIndex, synthetic_world

real = index_mod.atomic_write_text
def dying_write(path, text):
    if str(path).endswith("manifest.json"):
        os.kill(os.getpid(), signal.SIGKILL)
    return real(path, text)
index_mod.atomic_write_text = dying_write

names, vectors = synthetic_world(150, 8, seed=9)
index = VectorIndex({str(tmp_path)!r}, fingerprint="fp")
index.build(dict(zip(names, vectors)))
raise SystemExit("unreachable: the build should have been killed")
"""
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, timeout=120,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")})
        assert result.returncode == -9, result.stderr

        # Orphaned next-generation files exist, but the manifest still
        # names the old generation and every query answers from it.
        leftovers = list(tmp_path.glob("shard-*"))
        assert len(leftovers) > len(
            [s for s in index._shards if s is not None]) * 2 - 1
        survivor = VectorIndex(tmp_path, fingerprint="fp")
        assert survivor._generation == generation
        assert len(survivor) == len(names)
        [hits] = survivor.query(vectors[3], k=1)
        assert hits[0][0] == names[3]

        # The next successful commit garbage-collects the orphans.
        survivor.build(mapping)
        stems = {p.name.split(".")[0] for p in tmp_path.glob("shard-*")}
        live = {s.stem for s in survivor._shards if s is not None}
        assert stems == live

    def test_unreadable_manifest_raises_index_corrupt(self, tmp_path):
        from repro.index import IndexCorrupt

        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(IndexCorrupt):
            VectorIndex(tmp_path, fingerprint="fp")


# ----------------------------------------------------------------------
# IndexedEmbeddingProvider
# ----------------------------------------------------------------------
class TestIndexedProvider:
    def test_encode_names_keeps_index_in_sync(self, tmp_path):
        provider = RandomProvider(dim=8, seed=0)
        index = VectorIndex(tmp_path / "idx", fingerprint="fp")
        indexed = IndexedEmbeddingProvider(provider, index, auto_flush=3)
        indexed.encode_names(["a", "b"])
        assert "a" in index and index.stats()["pending"] == 2
        indexed.encode_names(["c"])          # hits auto_flush threshold
        assert index.stats()["pending"] == 0
        [hits] = indexed.retrieve_names(["a"], k=1)
        assert hits[0][0] == "a"

    def test_populate_from_store(self, tmp_path):
        store = EmbeddingStore(tmp_path / "store", fingerprint="fp")
        provider = PersistentProvider(RandomProvider(dim=8, seed=0), store)
        catalog = [f"ev-{i}" for i in range(40)]
        provider.encode_names(catalog)
        index = VectorIndex(tmp_path / "idx", fingerprint="fp")
        indexed = IndexedEmbeddingProvider(provider, index, store=store)
        assert indexed.ensure_indexed() == len(catalog)
        assert len(index) == len(catalog)
        # idempotent: a populated index is not rebuilt
        assert indexed.ensure_indexed() == 0

    def test_store_index_fingerprint_mismatch_rejected(self, tmp_path):
        store = EmbeddingStore(tmp_path / "store", fingerprint="ckpt-a")
        index = VectorIndex(tmp_path / "idx", fingerprint="ckpt-b")
        with pytest.raises(ValueError, match="fingerprint"):
            IndexedEmbeddingProvider(RandomProvider(dim=8, seed=0), index,
                                     store=store)


# ----------------------------------------------------------------------
# Task-adapter retrieval hooks
# ----------------------------------------------------------------------
class TestCandidateHooks:
    def test_candidate_events_filters_to_catalog(self, tmp_path):
        from repro.tasks.retrieval import RetrievalCandidateMixin

        class Adapter(RetrievalCandidateMixin):
            event_names = ["ev-1", "ev-2", "ev-3"]

        provider = RandomProvider(dim=8, seed=0)
        index = VectorIndex(tmp_path, fingerprint="fp")
        vectors = provider.encode_names(
            ["ev-1", "ev-2", "ev-3", "other-1", "other-2"])
        index.build({n: vectors[i] for i, n in enumerate(
            ["ev-1", "ev-2", "ev-3", "other-1", "other-2"])})
        adapter = Adapter()
        assert adapter.candidate_events("ev-1") == []   # no retriever yet
        adapter.attach_retriever(
            IndexedEmbeddingProvider(provider, index))
        got = adapter.candidate_events("ev-1", k=5)
        assert set(got) <= {"ev-2", "ev-3"}             # catalog only
        assert "ev-1" not in got                        # query excluded


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_build_query_stats_roundtrip(self, tmp_path, capsys):
        directory = str(tmp_path / "idx")
        assert index_main(["build", "--dir", directory,
                           "--synthetic", "300", "--dim", "8"]) == 0
        built = json.loads(capsys.readouterr().out)
        assert built["built"] == 300

        assert index_main(["query", "--dir", directory,
                           "--name", "entity-0", "--k", "3"]) == 0
        answer = json.loads(capsys.readouterr().out)
        assert answer["query"] == "entity-0"
        assert answer["neighbours"][0]["name"] == "entity-0"

        assert index_main(["stats", "--dir", directory]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["count"] == 300
        assert stats["generation"] == 1
        assert sum(stats["shard_counts"]) == 300

    def test_build_from_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        store = EmbeddingStore(store_dir, fingerprint="fp")
        PersistentProvider(RandomProvider(dim=8, seed=0),
                           store).encode_names([f"n-{i}" for i in range(20)])
        assert index_main(["build", "--dir", str(tmp_path / "idx"),
                           "--store", store_dir,
                           "--fingerprint", "fp"]) == 0
        assert json.loads(capsys.readouterr().out)["built"] == 20

    def test_build_flag_validation_and_unknown_name(self, tmp_path,
                                                    capsys):
        assert index_main(["build", "--dir", str(tmp_path)]) == 2
        capsys.readouterr()
        assert index_main(["build", "--dir", str(tmp_path / "i"),
                           "--synthetic", "50", "--dim", "8"]) == 0
        capsys.readouterr()
        assert index_main(["query", "--dir", str(tmp_path / "i"),
                           "--name", "missing-name"]) == 1
        assert "unknown name" in capsys.readouterr().out

    def test_top_level_cli_forwards_index(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["index", "build", "--dir", str(tmp_path / "idx"),
                     "--synthetic", "40", "--dim", "8"]) == 0
        assert json.loads(capsys.readouterr().out)["built"] == 40
