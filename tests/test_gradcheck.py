"""Gradient-check harness tests + hot-path regression coverage.

Property-based broadcasting checks for the numerically delicate functional
ops, self-tests of the :mod:`repro.diagnostics` harness (it must catch a
deliberately broken gradient), the full library sweep, and regressions for
the masking / attention / optim / batching fixes that the harness gates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.diagnostics import (
    assert_gradcheck,
    gradcheck,
    module_targets,
    run_sweep,
)
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.tokenization.vocab import Vocab
from repro.training.batching import BatchIterator
from repro.training.masking import DynamicMasker


def rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Harness self-tests
# ----------------------------------------------------------------------

class TestHarness:
    def test_correct_gradient_passes(self):
        x = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        report = assert_gradcheck(lambda: (x * x).sum(), {"x": x},
                                  name="square")
        assert report.passed and report.max_rel_err < 1e-6

    def test_broken_gradient_detected(self):
        # x * detach(x) backpropagates x instead of 2x.
        x = Tensor(rng().normal(size=(4,)) + 1.0, requires_grad=True)
        report = gradcheck(lambda: (x * x.detach()).sum(), {"x": x},
                           name="broken")
        assert not report.passed
        assert report.worst().max_rel_err > 1e-2

    def test_assert_raises_on_mismatch(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with pytest.raises(AssertionError, match="gradient mismatch"):
            assert_gradcheck(lambda: (x * x.detach()).sum(), {"x": x})

    def test_rejects_non_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            gradcheck(lambda: x * 2.0, {"x": x})

    def test_rejects_grad_free_target(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError, match="does not require grad"):
            gradcheck(lambda: x.sum(), {"x": x})

    def test_module_targets_collects_params_and_inputs(self):
        layer = nn.Linear(3, 2, rng())
        x = Tensor(np.ones((1, 3)), requires_grad=True)
        wrt = module_targets(layer, {"x": x})
        assert set(wrt) == {"param:weight", "param:bias", "input:x"}


# ----------------------------------------------------------------------
# Property-based broadcasting checks
# ----------------------------------------------------------------------

class TestBroadcastingGradients:
    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 3), classes=st.integers(2, 5),
           axis=st.sampled_from([-1, 0, 1]), seed=st.integers(0, 10 ** 6))
    def test_softmax_axes(self, batch, classes, axis, seed):
        r = rng(seed)
        x = Tensor(r.normal(size=(batch, classes)), requires_grad=True)
        w = Tensor(r.normal(size=(batch, classes)))
        assert_gradcheck(lambda: (F.softmax(x, axis=axis) * w).sum(),
                         {"x": x}, name=f"softmax-axis{axis}")

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 3), seq=st.integers(1, 3),
           dim=st.integers(2, 5), seed=st.integers(0, 10 ** 6))
    def test_layer_norm_broadcast_gain(self, batch, seq, dim, seed):
        r = rng(seed)
        x = Tensor(r.normal(size=(batch, seq, dim)), requires_grad=True)
        weight = Tensor(r.normal(size=dim), requires_grad=True)
        bias = Tensor(r.normal(size=dim), requires_grad=True)
        assert_gradcheck(
            lambda: (F.layer_norm(x, weight, bias) * 0.5).sum(),
            {"x": x, "weight": weight, "bias": bias}, name="layer_norm")

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 3), seq=st.integers(1, 4),
           dim=st.integers(1, 4), seed=st.integers(0, 10 ** 6))
    def test_masked_mean_with_empty_rows(self, batch, seq, dim, seed):
        r = rng(seed)
        x = Tensor(r.normal(size=(batch, seq, dim)), requires_grad=True)
        mask = (r.random((batch, seq)) > 0.4).astype(float)
        mask[0, :] = 0.0  # zero-count row exercises the count clamp
        w = Tensor(r.normal(size=(batch, dim)))
        assert_gradcheck(lambda: (F.masked_mean(x, mask) * w).sum(),
                         {"x": x}, name="masked_mean")

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(1, 3), classes=st.integers(1, 4),
           weight_kind=st.sampled_from(["full", "row", "none"]),
           seed=st.integers(0, 10 ** 6))
    def test_bce_with_logits_weight_broadcast(self, batch, classes,
                                              weight_kind, seed):
        r = rng(seed)
        logits = Tensor(r.normal(size=(batch, classes)) + 0.1,
                        requires_grad=True)
        targets = r.integers(0, 2, size=(batch, classes)).astype(float)
        weight = {"full": r.uniform(0.5, 2.0, size=(batch, classes)),
                  "row": r.uniform(0.5, 2.0, size=(1, classes)),
                  "none": None}[weight_kind]
        assert_gradcheck(
            lambda: F.binary_cross_entropy_with_logits(logits, targets,
                                                       weight=weight),
            {"logits": logits}, name="bce")

    @settings(max_examples=10, deadline=None)
    @given(left=st.integers(1, 3), right=st.integers(1, 3),
           dim=st.integers(2, 4), seed=st.integers(0, 10 ** 6))
    def test_cosine_similarity_broadcast(self, left, right, dim, seed):
        r = rng(seed)
        a = Tensor(r.normal(size=(left, 1, dim)), requires_grad=True)
        b = Tensor(r.normal(size=(right, dim)), requires_grad=True)
        w = Tensor(r.normal(size=(left, right)))
        assert_gradcheck(lambda: (F.cosine_similarity(a, b) * w).sum(),
                         {"a": a, "b": b}, name="cosine")


# ----------------------------------------------------------------------
# Library-wide sweep
# ----------------------------------------------------------------------

class TestSweep:
    def test_full_sweep_passes(self):
        reports = run_sweep()
        assert len(reports) >= 40
        failing = [r.summary() for r in reports if not r.passed]
        assert not failing, "\n".join(failing)
        assert max(r.max_rel_err for r in reports) < 1e-4

    def test_name_filter(self):
        reports = run_sweep(["kge."])
        assert {r.name for r in reports} >= {"kge.TransE", "kge.RotatE"}
        with pytest.raises(ValueError, match="no sweep case"):
            run_sweep(["definitely-not-a-case"])


# ----------------------------------------------------------------------
# Masking regressions
# ----------------------------------------------------------------------

def _vocab(extra=50):
    return Vocab([f"tok{i}" for i in range(extra)])


class TestMaskingRegressions:
    def test_random_replacement_never_keeps_original(self):
        vocab = _vocab(30)
        masker = DynamicMasker(vocab, rng(3), masking_rate=0.9,
                               mask_token_prob=0.0, random_token_prob=1.0)
        ids = np.full((8, 16), vocab.token_to_id("tok5"))
        mask = np.ones_like(ids)
        for _ in range(10):
            out = masker.mask_batch(ids, mask)
            changed = out.mask_positions
            assert changed.any()
            assert (out.ids[changed] != ids[changed]).all()
            assert not np.isin(out.ids[changed],
                               list(vocab.special_ids())).any()

    def test_pool_cache_invalidated_by_vocab_growth(self):
        vocab = _vocab(10)
        masker = DynamicMasker(vocab, rng(0))
        ids = np.tile(np.arange(5, 15), (2, 1))
        mask = np.ones_like(ids)
        masker.mask_batch(ids, mask)
        first_pool = masker._pool_cache[1]
        vocab.add_tokens([f"new{i}" for i in range(40)])
        masker.mask_batch(ids, mask)
        second_pool = masker._pool_cache[1]
        assert second_pool.size == first_pool.size + 40

    def test_pool_cache_invalidated_by_special_promotion(self):
        vocab = _vocab(10)
        masker = DynamicMasker(vocab, rng(0), mask_token_prob=0.0,
                               random_token_prob=1.0, masking_rate=0.9)
        ids = np.tile(np.arange(5, 15), (4, 1))
        mask = np.ones_like(ids)
        masker.mask_batch(ids, mask)
        # Promote an existing plain token: same vocab length, fewer poolable.
        vocab.add_special_tokens(["tok0"])
        for _ in range(10):
            out = masker.mask_batch(ids, mask)
            changed = out.mask_positions
            assert not (out.ids[changed] == vocab.token_to_id("tok0")).any()

    def test_excluded_and_special_positions_untouched(self):
        vocab = _vocab(20)
        masker = DynamicMasker(vocab, rng(1), masking_rate=0.9)
        ids = np.tile(np.arange(5, 17), (3, 1))
        ids[:, 0] = vocab.cls_id
        ids[:, -1] = vocab.sep_id
        mask = np.ones_like(ids)
        excluded = [{3, 4}, set(), {6}]
        out = masker.mask_batch(ids, mask, excluded_positions=excluded)
        assert not out.mask_positions[:, 0].any()
        assert not out.mask_positions[:, -1].any()
        assert not out.mask_positions[0, 3] and not out.mask_positions[0, 4]
        assert not out.mask_positions[2, 6]

    def test_padding_never_masked(self):
        vocab = _vocab(20)
        masker = DynamicMasker(vocab, rng(2), masking_rate=0.9)
        ids = np.tile(np.arange(5, 13), (2, 1))
        mask = np.ones_like(ids)
        mask[:, 5:] = 0
        out = masker.mask_batch(ids, mask)
        assert not out.mask_positions[:, 5:].any()
        assert (out.ids[:, 5:] == ids[:, 5:]).all()

    def test_labels_only_at_masked_positions(self):
        vocab = _vocab(20)
        masker = DynamicMasker(vocab, rng(4))
        ids = np.tile(np.arange(5, 21), (2, 1))
        mask = np.ones_like(ids)
        out = masker.mask_batch(ids, mask)
        assert (out.labels[out.mask_positions] ==
                ids[out.mask_positions]).all()
        assert (out.labels[~out.mask_positions] == -100).all()


# ----------------------------------------------------------------------
# Batching regressions
# ----------------------------------------------------------------------

class TestBatchIteratorIsolation:
    def test_iteration_does_not_drop_queued_items(self):
        it = BatchIterator(list(range(10)), 3, rng(0))
        first = it.next_batch()
        queued = [it.items[i] for i in it._order[it._cursor:]]
        epochs_before = it.epochs_completed

        epoch = [x for batch in it for x in batch]  # independent view
        assert sorted(epoch) == list(range(10))
        assert it.epochs_completed == epochs_before

        resumed = []
        while len(resumed) < len(queued):
            resumed.extend(it.next_batch())
        assert resumed == queued
        assert sorted(first + resumed) == list(range(10))

    def test_iteration_is_reshuffled_per_epoch(self):
        it = BatchIterator(list(range(12)), 4, rng(0))
        a = [x for batch in it for x in batch]
        b = [x for batch in it for x in batch]
        assert sorted(a) == sorted(b) == list(range(12))
        assert a != b  # vanishingly unlikely to collide when shuffled

    def test_unshuffled_iteration_preserves_order(self):
        it = BatchIterator(list(range(7)), 3, rng(0), shuffle=False)
        assert [x for batch in it for x in batch] == list(range(7))


# ----------------------------------------------------------------------
# Optimizer + attention regressions
# ----------------------------------------------------------------------

class TestClipGradNorm:
    def test_non_positive_max_norm_raises(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        with pytest.raises(ValueError, match="max_norm"):
            nn.clip_grad_norm([p], max_norm=0.0)
        with pytest.raises(ValueError, match="max_norm"):
            nn.clip_grad_norm([p], max_norm=-2.0)

    def test_global_norm_over_many_params(self):
        params = []
        for i in range(4):
            p = nn.Parameter(np.ones((2, 3)))
            p.grad = np.full((2, 3), float(i + 1))
            params.append(p)
        expected = np.sqrt(sum(6.0 * (i + 1) ** 2 for i in range(4)))
        norm = nn.clip_grad_norm(params, max_norm=1.0)
        assert abs(norm - expected) < 1e-9
        total = sum(float(np.vdot(p.grad, p.grad)) for p in params)
        assert abs(np.sqrt(total) - 1.0) < 1e-6


class TestAttentionWeights:
    def test_returned_weights_are_pre_dropout(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng(0), dropout=0.6)
        attn.train()
        x = Tensor(rng(1).normal(size=(2, 6, 8)))
        _, weights = attn(x, return_weights=True)
        # Pre-dropout rows are exact distributions even in training mode.
        assert np.allclose(weights.data.sum(axis=-1), 1.0)
        assert (weights.data >= 0).all()

    def test_precomputed_mask_bias_matches_mask(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng(0))
        attn.eval()
        x = Tensor(rng(1).normal(size=(2, 5, 8)))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]])
        bias = F.attention_scores_mask(mask)
        out_mask = attn(x, attention_mask=mask)
        out_bias = attn(x, mask_bias=bias)
        assert np.allclose(out_mask.data, out_bias.data)

    def test_encoder_stack_masking_unchanged(self):
        encoder = nn.TransformerEncoder(2, 8, 2, 16, rng(0))
        encoder.eval()
        x_data = rng(1).normal(size=(1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        out = encoder(Tensor(x_data), attention_mask=mask)
        # Padded key positions must not influence valid positions: perturb
        # the padded inputs and check the valid outputs are unchanged.
        perturbed = x_data.copy()
        perturbed[0, 2:] += 10.0
        out_perturbed = encoder(Tensor(perturbed), attention_mask=mask)
        assert np.allclose(out.data[0, :2], out_perturbed.data[0, :2])
