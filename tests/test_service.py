"""Tests for the service-delivery embedding providers."""

import numpy as np
import pytest

from repro.models import KTeleBert, KTeleBertConfig, TeleBertTrainer
from repro.service import (
    KTeleBertProvider,
    PlmProvider,
    RandomProvider,
    WordEmbeddingProvider,
)
from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.training.stage2 import build_stage2_data
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def stack():
    world = TelecomWorld.generate(seed=23, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    corpus = build_tele_corpus(world, seed=23)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(3)
    trainer = TeleBertTrainer(corpus.sentences, seed=23, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32, max_len=24)
    trainer.train(steps=3)
    data = build_stage2_data(corpus, episodes, kg, seed=23, ke_negatives=2)
    model = KTeleBert.from_telebert(
        trainer, KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=23)
    return world, kg, trainer, model


class TestRandomProvider:
    def test_shape_and_stability(self):
        provider = RandomProvider(dim=8, seed=0)
        a = provider.encode_names(["alarm one", "alarm two"])
        b = provider.encode_names(["alarm one"])
        assert a.shape == (2, 8)
        assert np.allclose(a[0], b[0])  # cached per name

    def test_distinct_names_differ(self):
        provider = RandomProvider(dim=8, seed=0)
        out = provider.encode_names(["a", "b"])
        assert not np.allclose(out[0], out[1])


class TestWordEmbeddingProvider:
    def test_average_of_words(self):
        provider = WordEmbeddingProvider(dim=8, seed=0)
        ab = provider.encode_names(["alpha beta"])[0]
        a = provider.encode_names(["alpha"])[0]
        b = provider.encode_names(["beta"])[0]
        assert np.allclose(ab, (a + b) / 2)

    def test_shared_words_give_similar_embeddings(self):
        provider = WordEmbeddingProvider(dim=32, seed=0)
        out = provider.encode_names(["link failure alarm",
                                     "link failure warning",
                                     "paging storm detected"])
        sim_close = np.dot(out[0], out[1])
        sim_far = np.dot(out[0], out[2])
        assert sim_close > sim_far


class TestPlmProvider:
    def test_encodes_with_trainer(self, stack):
        _, _, trainer, _ = stack
        provider = PlmProvider(trainer, label="TeleBERT")
        out = provider.encode_names(["the link failure leads to drops"])
        assert out.shape == (1, trainer.config.d_model)
        assert provider.label == "TeleBERT"


class TestKTeleBertProvider:
    def test_mode_validation(self, stack):
        _, kg, _, model = stack
        with pytest.raises(ValueError):
            KTeleBertProvider(model, kg, mode="bogus")
        with pytest.raises(ValueError):
            KTeleBertProvider(model, None, mode="entity")

    def test_name_mode(self, stack):
        _, _, _, model = stack
        provider = KTeleBertProvider(model, mode="name")
        out = provider.encode_names(["some alarm name"])
        assert out.shape == (1, model.bert_config.d_model)

    def test_entity_mode_wraps_known_surfaces(self, stack):
        world, kg, _, model = stack
        provider = KTeleBertProvider(model, kg, mode="entity")
        surface = world.ontology.alarms[0].name
        out = provider.encode_names([surface, "unknown target name"])
        assert out.shape[0] == 2

    def test_entity_attr_mode_differs_from_entity(self, stack):
        world, kg, _, model = stack
        surface = world.ontology.kpis[0].name  # has numeric attributes
        plain = KTeleBertProvider(model, kg, mode="entity").encode_names(
            [surface])
        with_attr = KTeleBertProvider(model, kg,
                                      mode="entity_attr").encode_names(
            [surface])
        assert not np.allclose(plain, with_attr)

    def test_three_modes_all_produce_vectors(self, stack):
        world, kg, _, model = stack
        names = [e.name for e in world.ontology.events[:4]]
        for mode in ("name", "entity", "entity_attr"):
            provider = KTeleBertProvider(model, kg, mode=mode)
            assert provider.encode_names(names).shape == (4, 16)
