"""Tests for the load generator: mixes, schedules, reports, end-to-end."""

from __future__ import annotations

import time

import pytest

from repro.loadgen import (
    LoadgenConfig,
    LoadReport,
    NetClient,
    ProtocolError,
    RequestRecord,
    classify_response,
    jain_fairness,
    parse_mix,
    render_curve,
    run_load,
    sweep,
)
from repro.loadgen.runner import RequestFactory, _arrival_times
from repro.netserve import NetServeConfig, TeleServer, TenantRegistry
from repro.serving import FaultAnalysisService, ServiceConfig
from repro.service import RandomProvider


class TestParseMix:
    def test_weights_normalised(self):
        mix = parse_mix("embed=8,fct=2")
        assert mix == {"embed": 0.8, "fct": 0.2}

    def test_bare_tokens_default_to_one(self):
        assert parse_mix("embed,fct") == {"embed": 0.5, "fct": 0.5}

    def test_repeated_tokens_accumulate(self):
        assert parse_mix("embed=1,embed=3") == {"embed": 1.0}

    @pytest.mark.parametrize("raw", ["", "  ", "bogus=1", "embed=x",
                                     "embed=0", "embed=-2"])
    def test_invalid_mixes_rejected(self, raw):
        with pytest.raises(ValueError):
            parse_mix(raw)


class TestClassification:
    def test_ok(self):
        assert classify_response({"ok": True}) == ("ok", None)

    @pytest.mark.parametrize("code", ["rate_limit", "concurrency",
                                      "overload", "queue_full", "deadline",
                                      "draining", "unavailable"])
    def test_retryable_codes_are_rejections(self, code):
        assert classify_response({"ok": False, "code": code}) == \
            ("rejected", code)

    @pytest.mark.parametrize("code", ["bad_request", "auth", "internal",
                                      None])
    def test_other_failures_are_errors(self, code):
        outcome, got = classify_response({"ok": False, "code": code})
        assert outcome == "error" and got == code


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_one_tenant_starved(self):
        assert jain_fairness([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_degenerate_inputs(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestArrivalSchedule:
    def test_steady_rate(self):
        config = LoadgenConfig(port=1, rate_per_s=100.0, duration_s=2.0)
        times = _arrival_times(config)
        assert len(times) == 200
        assert times[0] == 0.0
        assert times[-1] < 2.0
        steps = [b - a for a, b in zip(times, times[1:])]
        assert all(step == pytest.approx(0.01) for step in steps)

    def test_bursty_on_off_windows(self):
        config = LoadgenConfig(port=1, rate_per_s=40.0, duration_s=2.0,
                               bursty=True, burst_factor=4.0)
        times = _arrival_times(config)
        on_windows = [t for t in times if (t // 0.5) % 2 == 0]
        off_windows = [t for t in times if (t // 0.5) % 2 == 1]
        assert len(on_windows) == 160          # 2 windows x 0.5s x 160/s
        assert not off_windows                 # factor >= 2: silent gaps

    def test_bursty_mean_preserving_below_two(self):
        config = LoadgenConfig(port=1, rate_per_s=40.0, duration_s=2.0,
                               bursty=True, burst_factor=1.5)
        times = _arrival_times(config)
        assert len(times) == pytest.approx(80, abs=4)


class TestLoadReport:
    def _records(self):
        return [
            RequestRecord("a", "embed", 0.010, "ok", None),
            RequestRecord("a", "embed", 0.020, "ok", None),
            RequestRecord("a", "embed", 0.001, "rejected", "rate_limit"),
            RequestRecord("b", "embed", 0.030, "ok", None),
            RequestRecord("b", "fct", 0.002, "error", "bad_request"),
        ]

    def test_aggregation(self):
        report = LoadReport.from_records(self._records(), mode="open",
                                         duration_s=1.0, offered_rps=5.0)
        assert report.total == 5
        assert report.counts == {"ok": 3, "rejected": 1, "error": 1,
                                 "protocol_error": 0}
        assert report.codes == {"rate_limit": 1, "bad_request": 1}
        assert report.achieved_rps == pytest.approx(3.0)
        assert report.ok_latency["p50"] == pytest.approx(0.020)
        assert report.per_tenant["a"]["sent"] == 3
        assert report.per_tenant["b"]["ok"] == 1
        assert 0.5 < report.fairness <= 1.0

    def test_render_and_curve(self):
        report = LoadReport.from_records(self._records(), mode="open",
                                         duration_s=1.0, offered_rps=5.0)
        text = report.render()
        assert "fairness" in text and "tenant a" in text
        curve = render_curve([report, report])
        assert "offered" in curve and len(curve.splitlines()) == 4

    def test_empty_run(self):
        report = LoadReport.from_records([], mode="closed", duration_s=1.0,
                                         offered_rps=0.0)
        assert report.total == 0
        assert report.render()


class TestRequestFactory:
    def test_embed_payloads_deterministic(self):
        first = RequestFactory({"embed": 1.0}, seed=7)
        second = RequestFactory({"embed": 1.0}, seed=7)
        for index in range(5):
            assert first.build(index) == second.build(index)
        token, payload = first.build(99)
        assert token == "embed"
        assert payload["op"] == "embed" and payload["id"] == 99
        assert payload["names"]

    def test_deadline_ms_attached(self):
        factory = RequestFactory({"embed": 1.0}, deadline_ms=250.0)
        _, payload = factory.build(0)
        assert payload["deadline_ms"] == 250.0


# ----------------------------------------------------------------------
# End-to-end against an in-process server
# ----------------------------------------------------------------------
@pytest.fixture
def live_server():
    service = FaultAnalysisService(
        RandomProvider(dim=8, seed=0),
        config=ServiceConfig(max_batch_size=8, max_wait_ms=2,
                             timeout_s=1.0, max_retries=0,
                             backoff_s=0.01))
    tenants = TenantRegistry.from_json({"tenants": [
        {"name": "a", "api_key": "ka"},
        {"name": "b", "api_key": "kb"},
    ]})
    server = TeleServer(service, tenants,
                        config=NetServeConfig(close_timeout_s=2.0))
    host, port = server.start()
    yield host, port
    server.close(timeout_s=1.0)
    service.close()


@pytest.mark.timeout(60)
class TestRunLoad:
    def test_closed_loop_two_tenants(self, live_server):
        host, port = live_server
        report = run_load(LoadgenConfig(
            host=host, port=port, api_keys=("ka", "kb"), mode="closed",
            duration_s=1.0, concurrency=2, timeout_s=5.0))
        assert report.counts["protocol_error"] == 0
        assert report.counts["ok"] > 0
        assert set(report.per_tenant) == {"ka", "kb"}
        assert report.fairness > 0.5

    def test_open_loop_respects_schedule(self, live_server):
        host, port = live_server
        started = time.monotonic()
        report = run_load(LoadgenConfig(
            host=host, port=port, api_keys=("ka",), mode="open",
            duration_s=1.0, rate_per_s=40.0, workers=2, timeout_s=5.0))
        elapsed = time.monotonic() - started
        assert report.counts["protocol_error"] == 0
        assert report.total == 40
        assert elapsed < 10.0
        assert report.offered_rps == 40.0

    def test_sweep_produces_one_report_per_rate(self, live_server):
        host, port = live_server
        reports = sweep(LoadgenConfig(
            host=host, port=port, api_keys=("ka",), duration_s=0.5,
            workers=2, timeout_s=5.0), rates=[20.0, 40.0])
        assert [r.offered_rps for r in reports] == [20.0, 40.0]
        assert all(r.counts["protocol_error"] == 0 for r in reports)

    def test_client_protocol_error_on_dead_port(self):
        with pytest.raises(ProtocolError):
            with NetClient("127.0.0.1", 1, timeout_s=0.5) as client:
                client.request({"op": "ping"})
