"""Tests for bootstrap CIs, the query FILTER clause, and the OOV-rate utility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import ConfidenceInterval, bootstrap_ci, rank_metric_cis
from repro.kg import Pattern, Variable, build_tele_kg, query
from repro.tokenization import WordTokenizer
from repro.world import TelecomWorld


class TestBootstrap:
    def test_interval_contains_estimate(self):
        samples = np.random.default_rng(0).normal(5.0, 1.0, 100)
        ci = bootstrap_ci(samples)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate in ci

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 20))
        large = bootstrap_ci(rng.normal(0, 1, 2000))
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic_with_rng(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_ci(samples, rng=np.random.default_rng(7))
        b = bootstrap_ci(samples, rng=np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_str_rendering(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert "[0.400, 0.600]" in str(ci)

    def test_rank_metric_cis(self):
        cis = rank_metric_cis([1, 2, 3, 10, 1, 1], hit_levels=(1, 3))
        assert set(cis) == {"MR", "MRR", "Hits@1", "Hits@3"}
        assert cis["MR"].estimate == 3.0
        assert 0 <= cis["Hits@1"].estimate <= 1.0


class TestQueryFilter:
    @pytest.fixture(scope="class")
    def kg(self):
        world = TelecomWorld.generate(seed=37, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        return build_tele_kg(world)

    def test_filter_restricts_results(self, kg):
        h, t = Variable("h"), Variable("t")
        everything = query(kg, [Pattern(h, "trigger", t)])
        kpi_only = query(kg, [Pattern(h, "trigger", t)],
                         where=lambda b: b["t"].startswith("KPI"))
        assert len(kpi_only) < len(everything)
        assert all(row["t"].startswith("KPI") for row in kpi_only)

    def test_filter_with_limit(self, kg):
        h, t = Variable("h"), Variable("t")
        rows = query(kg, [Pattern(h, "trigger", t)],
                     where=lambda b: b["t"].startswith("KPI"), limit=2)
        assert len(rows) == 2


class TestOovRate:
    def _tokenizer(self):
        return WordTokenizer.from_corpus(["alpha beta gamma", "alpha beta"])

    def test_zero_for_known_corpus(self):
        tok = self._tokenizer()
        assert tok.oov_rate(["alpha beta"]) == 0.0

    def test_counts_unknowns(self):
        tok = self._tokenizer()
        assert tok.oov_rate(["alpha zzz"]) == 0.5

    def test_empty_raises(self):
        tok = self._tokenizer()
        with pytest.raises(ValueError):
            tok.oov_rate([""])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=2, max_size=50))
def test_bootstrap_interval_brackets_true_mean_often(samples):
    ci = bootstrap_ci(samples, confidence=0.99, num_resamples=300)
    assert ci.low <= np.mean(samples) <= ci.high


class TestSignificance:
    def test_identical_scores_not_significant(self):
        from repro.evaluation import paired_permutation_test
        result = paired_permutation_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_clear_difference_is_significant(self):
        from repro.evaluation import paired_permutation_test
        rng = np.random.default_rng(0)
        base = rng.normal(0, 0.1, 40)
        result = paired_permutation_test(base + 1.0, base,
                                         num_permutations=2000)
        assert result.mean_difference > 0.9
        assert result.significant(alpha=0.01)

    def test_validation(self):
        from repro.evaluation import paired_permutation_test
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_permutation_test([], [])

    def test_compare_rank_lists(self):
        from repro.evaluation import compare_rank_lists
        better = [1] * 20
        worse = [5] * 20
        result = compare_rank_lists(better, worse, num_permutations=1000)
        assert result.mean_difference > 0
        assert result.significant()

    def test_deterministic_with_rng(self):
        from repro.evaluation import paired_permutation_test
        a = [1.0, 1.5, 0.5, 2.0]
        b = [0.9, 1.2, 0.7, 1.5]
        r1 = paired_permutation_test(a, b, rng=np.random.default_rng(3))
        r2 = paired_permutation_test(a, b, rng=np.random.default_rng(3))
        assert r1 == r2
