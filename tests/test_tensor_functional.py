"""Tests for composite differentiable ops (softmax, layer norm, losses...)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F
from repro.tensor.gradcheck import check_gradients

RNG = np.random.default_rng(11)


def _t(shape, scale=1.0):
    return Tensor(RNG.normal(0, scale, size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(_t((4, 7)))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = _t((3, 5))
        shifted = Tensor(x.data + 100.0)
        assert np.allclose(F.softmax(x).data, F.softmax(shifted).data)

    def test_gradient(self):
        check_gradients(lambda a: (F.softmax(a) ** 2).sum(), [_t((3, 4))])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _t((3, 5))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_log_softmax_gradient(self):
        check_gradients(lambda a: F.log_softmax(a).sum(), [_t((2, 6))])

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, -1000.0, 0.0]]))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        assert np.allclose(out.sum(), 1.0)


class TestActivations:
    def test_gelu_gradient(self):
        check_gradients(lambda a: F.gelu(a).sum(), [_t((3, 4))])

    def test_gelu_known_values(self):
        # gelu(0) = 0, gelu(x) ~ x for large x, ~0 for very negative x.
        x = Tensor(np.array([0.0, 10.0, -10.0]))
        out = F.gelu(x).data
        assert abs(out[0]) < 1e-12
        assert abs(out[1] - 10.0) < 1e-3
        assert abs(out[2]) < 1e-3

    def test_sigmoid_range(self):
        out = F.sigmoid(_t((10,), scale=5.0)).data
        assert ((out > 0) & (out < 1)).all()


class TestLayerNorm:
    def test_output_standardised(self):
        x = _t((4, 8), scale=3.0)
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = F.layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_all_inputs(self):
        x = _t((2, 5))
        w = Tensor(RNG.normal(1.0, 0.1, 5), requires_grad=True)
        b = Tensor(RNG.normal(0.0, 0.1, 5), requires_grad=True)
        check_gradients(lambda x, w, b: (F.layer_norm(x, w, b) ** 2).sum(),
                        [x, w, b])


class TestDropout:
    def test_identity_when_eval(self):
        x = _t((5, 5))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_identity_when_rate_zero(self):
        x = _t((5, 5))
        out = F.dropout(x, 0.0, np.random.default_rng(0), training=True)
        assert out is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            F.dropout(_t((2,)), 1.0, np.random.default_rng(0))


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = _t((4, 5))
        targets = np.array([0, 1, 2, 3])
        loss = F.cross_entropy(logits, targets)
        probs = F.softmax(logits).data
        manual = -np.log(probs[np.arange(4), targets]).mean()
        assert np.allclose(loss.data, manual)

    def test_cross_entropy_gradient(self):
        targets = np.array([1, 0, 3])
        check_gradients(lambda a: F.cross_entropy(a, targets), [_t((3, 4))])

    def test_cross_entropy_ignore_index(self):
        logits = _t((4, 5))
        targets = np.array([0, -100, 2, -100])
        loss_masked = F.cross_entropy(logits, targets, ignore_index=-100)
        kept = Tensor(logits.data[[0, 2]], requires_grad=False)
        loss_manual = F.cross_entropy(kept, np.array([0, 2]))
        assert np.allclose(loss_masked.data, loss_manual.data)

    def test_cross_entropy_all_ignored_returns_zero(self):
        logits = _t((2, 3))
        loss = F.cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert loss.data == 0.0

    def test_cross_entropy_3d_logits(self):
        logits = _t((2, 3, 5))
        targets = RNG.integers(0, 5, size=(2, 3))
        loss = F.cross_entropy(logits, targets)
        assert np.isfinite(loss.data)

    def test_bce_matches_naive(self):
        logits = _t((6,))
        targets = RNG.integers(0, 2, 6).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert np.allclose(loss.data, manual)

    def test_bce_gradient(self):
        targets = np.array([1.0, 0.0, 1.0])
        check_gradients(
            lambda a: F.binary_cross_entropy_with_logits(a, targets), [_t((3,))])

    def test_bce_stable_for_large_logits(self):
        logits = Tensor(np.array([500.0, -500.0]), requires_grad=True)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.data)
        assert loss.data < 1e-6

    def test_mse_gradient(self):
        target = RNG.normal(size=(3, 2))
        check_gradients(lambda a: F.mse_loss(a, target), [_t((3, 2))])


class TestSimilarityAndPooling:
    def test_cosine_similarity_self_is_one(self):
        x = _t((4, 8))
        sim = F.cosine_similarity(x, x)
        assert np.allclose(sim.data, 1.0, atol=1e-6)

    def test_cosine_similarity_orthogonal(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        assert np.allclose(F.cosine_similarity(a, b).data, 0.0, atol=1e-7)

    def test_cosine_similarity_gradient(self):
        check_gradients(lambda a, b: F.cosine_similarity(a, b).sum(),
                        [_t((2, 4)), _t((2, 4))])

    def test_masked_mean_ignores_padding(self):
        x = Tensor(np.arange(12, dtype=float).reshape(1, 4, 3), requires_grad=True)
        mask = np.array([[1, 1, 0, 0]])
        out = F.masked_mean(x, mask)
        expected = x.data[0, :2].mean(axis=0)
        assert np.allclose(out.data[0], expected)

    def test_masked_mean_gradient(self):
        mask = np.array([[1, 1, 1, 0]])
        check_gradients(lambda a: (F.masked_mean(a, mask) ** 2).sum(),
                        [_t((1, 4, 3))])

    def test_attention_mask_bias(self):
        mask = np.array([[1, 1, 0]])
        bias = F.attention_scores_mask(mask)
        assert bias.shape == (1, 1, 1, 3)
        assert bias[0, 0, 0, 0] == 0.0
        assert bias[0, 0, 0, 2] < -1e8


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=9))
def test_softmax_always_a_distribution(rows, cols):
    rng = np.random.default_rng(rows * 100 + cols)
    x = Tensor(rng.normal(0, 10, size=(rows, cols)))
    out = F.softmax(x).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=8))
def test_logsumexp_consistency(values):
    x = Tensor(np.array([values]))
    log_probs = F.log_softmax(x).data
    assert np.allclose(np.exp(log_probs).sum(), 1.0, atol=1e-8)
