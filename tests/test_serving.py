"""Tests for the online serving subsystem (:mod:`repro.serving`)."""

import io
import json
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    EmbeddingStore,
    FaultAnalysisService,
    MetricsRegistry,
    MicroBatcher,
    PersistentProvider,
    ServiceConfig,
    ServingError,
    handle_request,
    merge_hit_stats,
    serve_loop,
)
from repro.serving.metrics import Histogram
from repro.service import CachedProvider, RandomProvider


class CountingProvider(RandomProvider):
    """Call-count probe: records every forward pass the encoder performs."""

    def __init__(self, dim=8, seed=0, delay_s=0.0):
        super().__init__(dim=dim, seed=seed)
        self.calls = 0
        self.batches: list[list[str]] = []
        self.delay_s = delay_s
        self._count_lock = threading.Lock()

    def encode_names(self, names):
        with self._count_lock:
            self.calls += 1
            self.batches.append(list(names))
        if self.delay_s:
            time.sleep(self.delay_s)
        return super().encode_names(names)


class FailingProvider(RandomProvider):
    """Raises for the first ``failures`` calls, then succeeds."""

    label = "Failing"

    def __init__(self, dim=8, failures=10**9):
        super().__init__(dim=dim, seed=0)
        self.failures = failures
        self.calls = 0

    def encode_names(self, names):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("primary encoder down")
        return super().encode_names(names)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(4)
        registry.gauge("depth").set(7)
        snap = registry.snapshot()
        assert snap["counters"]["requests"] == 5
        assert snap["gauges"]["depth"] == 7.0
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_gauge_add_moves_both_directions(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hung_threads")
        gauge.add(3)
        gauge.add(-2)
        assert registry.snapshot()["gauges"]["hung_threads"] == 1.0
        gauge.add(-5)   # gauges, unlike counters, may go negative
        assert registry.snapshot()["gauges"]["hung_threads"] == -4.0

    def test_percentile_math(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        # numpy.percentile linear-interpolation convention.
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)
        assert histogram.percentile(99) == pytest.approx(99.01)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        assert histogram.mean == pytest.approx(50.5)

    def test_percentiles_match_numpy_on_random_data(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(size=257)
        histogram = Histogram("latency")
        for value in values:
            histogram.observe(value)
        for q in (50, 95, 99):
            assert histogram.percentile(q) == pytest.approx(
                np.percentile(values, q))

    def test_window_ages_out_old_samples(self):
        histogram = Histogram("latency", window=4)
        for value in (100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0):
            histogram.observe(value)
        assert histogram.percentile(50) == 1.0   # window holds only 1.0s
        assert histogram.count == 8              # lifetime count preserved

    def test_empty_histogram(self):
        histogram = Histogram("latency")
        assert histogram.percentile(95) == 0.0
        assert histogram.mean == 0.0

    def test_timer_and_render(self):
        registry = MetricsRegistry()
        with registry.time("op"):
            pass
        text = registry.render()
        assert "histogram op" in text and "p95" in text

    def test_events_bounded_and_sunk(self):
        lines = []
        registry = MetricsRegistry(event_capacity=3, sink=lines.append)
        for i in range(5):
            registry.emit("tick", i=i)
        assert len(registry.events) == 3
        assert registry.events[-1]["i"] == 4
        assert len(lines) == 5
        assert json.loads(lines[0])["kind"] == "tick"

    def test_merge_hit_stats(self):
        merged = merge_hit_stats([{"hits": 3, "misses": 1},
                                  {"hits": 1, "misses": 3}])
        assert merged == {"hits": 4, "misses": 4, "hit_rate": 0.5}
        assert merge_hit_stats([])["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# CachedProvider hardening (satellite)
# ----------------------------------------------------------------------
class TestCachedProvider:
    def test_clear_resets_hit_rate_stats(self):
        provider = CachedProvider(RandomProvider(dim=4, seed=0))
        provider.encode_names(["a", "a", "b"])
        assert provider.stats()["hits"] == 1
        provider.clear()
        stats = provider.stats()
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0, "size": 0}

    def test_stats_shape_feeds_merge(self):
        provider = CachedProvider(RandomProvider(dim=4, seed=0))
        provider.encode_names(["a", "b"])
        provider.encode_names(["a", "b"])
        stats = provider.stats()
        assert stats["hit_rate"] == 0.5
        assert merge_hit_stats([stats])["hits"] == 2

    def test_concurrent_encodes_are_consistent(self):
        inner = CountingProvider(dim=4)
        provider = CachedProvider(inner)
        errors = []

        def worker():
            try:
                for _ in range(20):
                    out = provider.encode_names(["x", "y", "x"])
                    assert np.allclose(out[0], out[2])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Concurrent cold misses may duplicate work (last-write-wins, so a
        # hung encode can never block an independent caller), but once the
        # cache settles every further iteration is a pure hit: the call
        # count is bounded by the number of racing threads, not 8 * 20.
        assert 1 <= inner.calls <= 8
        assert provider.cache_size == 2


# ----------------------------------------------------------------------
# Micro-batcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flush_on_size(self):
        provider = CountingProvider(dim=4)
        # Deadline far away: only the size trigger can flush.
        with MicroBatcher(provider, max_batch_size=4,
                          max_wait_ms=60_000) as batcher:
            names = ["n0", "n1", "n2", "n3"]
            out = batcher.encode(names)
            assert out.shape == (4, 4)
            assert provider.calls == 1
            assert sorted(provider.batches[0]) == names

    def test_flush_on_timeout(self):
        provider = CountingProvider(dim=4)
        with MicroBatcher(provider, max_batch_size=1000,
                          max_wait_ms=20) as batcher:
            start = time.monotonic()
            out = batcher.encode(["solo"])
            elapsed = time.monotonic() - start
            assert out.shape == (1, 4)
            assert provider.calls == 1
        assert elapsed < 5.0  # deadline fired; did not wait for batch fill

    def test_concurrent_singles_coalesce(self):
        """≥4 concurrent single-name requests land in ≤2 provider batches."""
        provider = CountingProvider(dim=4, delay_s=0.05)
        results = {}
        barrier = threading.Barrier(4)
        with MicroBatcher(provider, max_batch_size=16,
                          max_wait_ms=100) as batcher:

            def worker(name):
                barrier.wait()
                results[name] = batcher.encode([name])

            threads = [threading.Thread(target=worker, args=(f"name-{i}",))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(results) == 4
        assert provider.calls <= 2
        assert sum(len(b) for b in provider.batches) == 4

    def test_cross_request_dedup(self):
        """Concurrent requests for one name share a single encode."""
        provider = CountingProvider(dim=4, delay_s=0.05)
        outputs = []
        barrier = threading.Barrier(6)
        with MicroBatcher(provider, max_batch_size=16,
                          max_wait_ms=100) as batcher:

            def worker():
                barrier.wait()
                outputs.append(batcher.encode(["shared name"]))

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        total_encoded = sum(len(batch) for batch in provider.batches)
        assert total_encoded == 1          # the name crossed the wire once
        assert len(outputs) == 6
        for out in outputs[1:]:
            assert np.allclose(out, outputs[0])

    def test_duplicate_names_within_one_request(self):
        provider = CountingProvider(dim=4)
        with MicroBatcher(provider, max_batch_size=2,
                          max_wait_ms=10) as batcher:
            out = batcher.encode(["a", "a", "b"])
            assert out.shape == (3, 4)
            assert np.allclose(out[0], out[1])

    def test_provider_error_propagates(self):
        with MicroBatcher(FailingProvider(dim=4), max_batch_size=2,
                          max_wait_ms=5) as batcher:
            with pytest.raises(RuntimeError, match="primary encoder down"):
                batcher.encode(["a", "b"])
            # The worker survives a failed flush.
            with pytest.raises(RuntimeError):
                batcher.encode(["c"])

    def test_close_rejects_new_work(self):
        batcher = MicroBatcher(CountingProvider(dim=4), max_wait_ms=5)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.encode(["late"])

    def test_empty_request(self):
        with MicroBatcher(CountingProvider(dim=4)) as batcher:
            assert batcher.encode([]).shape == (0, 4)


# ----------------------------------------------------------------------
# Persistent embedding store
# ----------------------------------------------------------------------
class TestEmbeddingStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1", label="P",
                               mode="name")
        assert store.get("a") is None
        store.put_many({"a": np.arange(3.0)})
        assert np.allclose(store.get("a"), [0, 1, 2])
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert "a" in store and len(store) == 1

    def test_survives_process_restart(self, tmp_path):
        first = EmbeddingStore(tmp_path, fingerprint="f1")
        first.put_many({"a": np.ones(4), "b": np.zeros(4)})
        # A fresh instance (new process) reads the same log.
        second = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(second.get("a"), 1.0)
        assert second.stats()["disk_entries"] == 2

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = EmbeddingStore(tmp_path, fingerprint="ckpt-v1")
        old.put_many({"a": np.ones(4)})
        fresh = EmbeddingStore(tmp_path, fingerprint="ckpt-v2")
        assert fresh.get("a") is None          # old vectors invisible
        fresh.put_many({"a": np.full(4, 2.0)})
        assert np.allclose(fresh.get("a"), 2.0)
        # The old namespace still answers under its own fingerprint.
        assert np.allclose(EmbeddingStore(tmp_path,
                                          fingerprint="ckpt-v1").get("a"), 1.0)

    def test_newest_record_wins(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1")
        store.put_many({"a": np.zeros(2)})
        store.put_many({"a": np.ones(2)})
        reloaded = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(reloaded.get("a"), 1.0)

    def test_compact_drops_stale_namespaces(self, tmp_path):
        EmbeddingStore(tmp_path, fingerprint="old").put_many(
            {f"n{i}": np.ones(2) for i in range(5)})
        live = EmbeddingStore(tmp_path, fingerprint="new")
        live.put_many({"keep": np.zeros(2)})
        assert live.compact() == 1
        # Only the live record remains in the log.
        lines = (tmp_path / "embeddings.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert np.allclose(live.get("keep"), 0.0)

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1", lru_capacity=2)
        store.put_many({f"n{i}": np.full(2, float(i)) for i in range(5)})
        assert store.stats()["memory_entries"] == 2
        assert np.allclose(store.get("n0"), 0.0)   # served from disk tier
        assert store.stats()["memory_entries"] == 2

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1")
        store.put_many({"a": np.ones(2)})
        with open(tmp_path / "embeddings.jsonl", "ab") as handle:
            handle.write(b'{"v": "f1", "p": "provider", "m": "na')  # torn
        survivor = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(survivor.get("a"), 1.0)
        survivor.put_many({"b": np.zeros(2)})
        assert np.allclose(EmbeddingStore(tmp_path,
                                          fingerprint="f1").get("b"), 0.0)


class TestPersistentProvider:
    def test_warm_store_zero_forward_passes(self, tmp_path):
        """Acceptance: 200 warm names → zero provider forward passes."""
        names = [f"alarm {i}" for i in range(200)]
        cold_inner = CountingProvider(dim=8)
        cold = PersistentProvider(
            cold_inner, EmbeddingStore(tmp_path, fingerprint="f1"))
        first = cold.encode_names(names)
        assert cold_inner.calls == 1

        # Fresh provider + fresh store instance = a new process.
        warm_inner = CountingProvider(dim=8)
        warm = PersistentProvider(
            warm_inner, EmbeddingStore(tmp_path, fingerprint="f1"))
        second = warm.encode_names(names)
        assert warm_inner.calls == 0               # zero forward passes
        assert np.allclose(first, second)
        assert warm.stats()["hits"] == 200

    def test_refingerprinted_store_reencodes(self, tmp_path):
        names = ["a", "b"]
        PersistentProvider(CountingProvider(dim=4),
                           EmbeddingStore(tmp_path, fingerprint="v1")
                           ).encode_names(names)
        retrained = CountingProvider(dim=4, seed=9)
        provider = PersistentProvider(
            retrained, EmbeddingStore(tmp_path, fingerprint="v2"))
        provider.encode_names(names)
        assert retrained.calls == 1                # invalidation re-encodes


class TestStoreRegressions:
    """Regression pins for the three store bugfixes in this PR."""

    def test_get_many_opens_the_log_once(self, tmp_path, monkeypatch):
        store = EmbeddingStore(tmp_path, fingerprint="f1", lru_capacity=1)
        names = [f"n{i}" for i in range(60)]
        store.put_many({n: np.full(3, float(i))
                        for i, n in enumerate(names)})
        assert store.stats()["memory_entries"] == 1  # 59 are disk-only

        opens = []
        real_open = open

        def counting_open(file, *args, **kwargs):
            if str(file) == str(store.path):
                opens.append(file)
            return real_open(file, *args, **kwargs)

        import builtins
        monkeypatch.setattr(builtins, "open", counting_open)
        found = store.get_many(names)
        assert len(found) == 60
        assert len(opens) == 1                     # one handle per batch
        for i, name in enumerate(names):
            assert np.allclose(found[name], float(i))

    def test_wrong_shape_provider_is_refused_and_not_persisted(
            self, tmp_path):
        from repro.serving import ProviderShapeError

        class ShortProvider(RandomProvider):
            def encode_names(self, names):
                return super().encode_names(names)[:-1]   # drops a row

        store = EmbeddingStore(tmp_path, fingerprint="f1")
        provider = PersistentProvider(ShortProvider(dim=4), store)
        with pytest.raises(ProviderShapeError):
            provider.encode_names(["a", "b", "c"])
        # Nothing half-zipped reached the store.
        assert len(store) == 0

    def test_compact_repersists_lru_only_names(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1", lru_capacity=2)
        store.put_many({"a": np.zeros(2)})
        store.put_many({"b": np.ones(2)})
        store.put_many({"c": np.full(2, 2.0)})     # LRU now holds b, c
        # Tear c's trailing disk record; its only good copy is the LRU.
        raw = (tmp_path / "embeddings.jsonl").read_bytes()
        torn = raw[:raw.rstrip(b"\n").rfind(b"\n") + 1] + b'{"v": "f1'
        (tmp_path / "embeddings.jsonl").write_bytes(torn)

        assert store.compact() == 3
        reloaded = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(reloaded.get("a"), 0.0)  # streamed from disk
        assert np.allclose(reloaded.get("c"), 2.0)  # re-persisted from LRU
        lines = (tmp_path / "embeddings.jsonl").read_text().splitlines()
        assert len(lines) == 3

    def test_failed_compact_leaves_original_log(self, tmp_path,
                                                monkeypatch):
        store = EmbeddingStore(tmp_path, fingerprint="f1", lru_capacity=2)
        store.put_many({f"n{i}": np.full(2, float(i)) for i in range(5)})
        before = (tmp_path / "embeddings.jsonl").read_bytes()

        def boom(handle, offset):
            raise RuntimeError("disk died mid-compaction")

        monkeypatch.setattr(EmbeddingStore, "_decode_at",
                            staticmethod(boom))
        with pytest.raises(RuntimeError):
            store.compact()
        monkeypatch.undo()
        # temp+fsync+rename: the aborted rewrite never replaced the log.
        assert (tmp_path / "embeddings.jsonl").read_bytes() == before
        reloaded = EmbeddingStore(tmp_path, fingerprint="f1")
        assert np.allclose(reloaded.get("n0"), 0.0)

    def test_len_and_stats_count_tier_union(self, tmp_path):
        store = EmbeddingStore(tmp_path, fingerprint="f1", lru_capacity=2)
        store.put_many({f"n{i}": np.full(2, float(i)) for i in range(5)})
        stats = store.stats()
        # n3/n4 live in BOTH tiers; the union must not double-count them.
        assert stats["memory_entries"] == 2
        assert stats["disk_entries"] == 5
        assert stats["entries"] == 5
        assert len(store) == 5
        assert store.names() == sorted(f"n{i}" for i in range(5))


# ----------------------------------------------------------------------
# Façade: timeout / retry / fallback / stats
# ----------------------------------------------------------------------
def _fast_config(**overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=2, timeout_s=5.0,
                    max_retries=1, backoff_s=0.001)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestFaultAnalysisService:
    def test_embed_batches_and_counts(self):
        with FaultAnalysisService(CountingProvider(dim=8),
                                  config=_fast_config()) as service:
            out = service.embed(["a", "b"])
            assert out.shape == (2, 8)
            service.embed(["a"])
            stats = service.stats()
            assert stats["requests"] == 2
            assert stats["cache"]["hits"] == 1
            assert stats["latency"]["count"] == 2
            assert stats["latency"]["p95"] >= stats["latency"]["p50"] >= 0.0

    def test_retry_then_success(self):
        provider = FailingProvider(dim=8, failures=1)
        with FaultAnalysisService(provider,
                                  config=_fast_config()) as service:
            out = service.embed(["a"])
            assert out.shape == (1, 8)
            assert provider.calls == 2
            assert service.metrics.counter("serving.retries").value == 1

    def test_fallback_after_exhausted_retries(self):
        fallback = CountingProvider(dim=8, seed=1)
        fallback.label = "Random"  # same label, different instance
        with FaultAnalysisService(FailingProvider(dim=8),
                                  fallback=fallback,
                                  config=_fast_config()) as service:
            out = service.embed(["a", "b"])
            assert out.shape == (2, 8)
            assert fallback.calls == 1
            assert service.metrics.counter("serving.fallbacks").value == 1
            kinds = [e["kind"] for e in service.metrics.events]
            assert "fallback" in kinds and "error" in kinds

    def test_raises_without_fallback(self):
        with FaultAnalysisService(FailingProvider(dim=8),
                                  config=_fast_config()) as service:
            with pytest.raises(ServingError):
                service.embed(["a"])

    def test_timeout_degrades_to_fallback(self):
        slow = CountingProvider(dim=8, delay_s=0.5)
        fallback = CountingProvider(dim=8, seed=1)
        config = _fast_config(timeout_s=0.05, max_retries=0)
        with FaultAnalysisService(slow, fallback=fallback,
                                  config=config) as service:
            out = service.embed(["a"])
            assert out.shape == (1, 8)
            assert fallback.calls == 1
            assert service.metrics.counter("serving.timeouts").value == 1

    def test_fallback_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultAnalysisService(RandomProvider(dim=8, seed=0),
                                 fallback=RandomProvider(dim=4, seed=0))

    def test_persistent_store_integration(self, tmp_path):
        names = [f"n{i}" for i in range(20)]
        with FaultAnalysisService(CountingProvider(dim=8),
                                  config=_fast_config(),
                                  store_dir=tmp_path,
                                  fingerprint="f1") as service:
            service.embed(names)
        inner = CountingProvider(dim=8)
        with FaultAnalysisService(inner, config=_fast_config(),
                                  store_dir=tmp_path,
                                  fingerprint="f1") as service:
            service.embed(names)
            assert inner.calls == 0
            assert service.stats()["store"]["disk_entries"] == 20


# ----------------------------------------------------------------------
# Task façade + JSON-lines server over a tiny world
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_service():
    from repro.kg import build_tele_kg  # noqa: F401 — world sanity import
    from repro.tasks.eap import EapAdapter, build_eap_dataset
    from repro.tasks.fct import FctAdapter, build_fct_dataset
    from repro.tasks.rca import RcaAdapter, build_rca_dataset
    from repro.world import TelecomWorld

    world = TelecomWorld.generate(seed=11, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    episodes = world.simulate_episodes(30)
    rca = RcaAdapter(build_rca_dataset(world, episodes), epochs=2)
    eap = EapAdapter(build_eap_dataset(world, episodes), epochs=2)
    fct = FctAdapter(build_fct_dataset(world, episodes), epochs=3)
    service = FaultAnalysisService(
        RandomProvider(dim=16, seed=0), config=_fast_config(),
        rca=rca, eap=eap, fct=fct)
    yield service, world, rca, eap, fct
    service.close()

class TestFaultAnalysisFacade:
    def test_rank_root_causes(self, tiny_service):
        service, world, rca, _, _ = tiny_service
        state = rca.dataset.states[0]
        ranking = service.rank_root_causes(state)
        assert sorted(n for n, _ in ranking) == sorted(state.node_names)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
        top2 = service.rank_root_causes(state, top_k=2)
        assert top2 == ranking[:2]

    def test_propagate_alarms(self, tiny_service):
        service, _, _, eap, _ = tiny_service
        pairs = eap.dataset.pairs[:3]
        verdicts = service.propagate_alarms(pairs)
        assert len(verdicts) == 3
        for verdict in verdicts:
            assert 0.0 <= verdict["confidence"] <= 1.0
            assert isinstance(verdict["triggers"], bool)

    def test_classify_fault(self, tiny_service):
        service, _, _, _, fct = tiny_service
        alarm = fct.dataset.entity_names[0]
        hops = service.classify_fault(alarm, top_k=3)
        assert 1 <= len(hops) <= 3
        scores = [h["score"] for h in hops]
        assert scores == sorted(scores, reverse=True)
        assert all(h["alarm"] != alarm for h in hops)
        with pytest.raises(ServingError):
            service.classify_fault("no such alarm")

    def test_adapters_fit_once(self, tiny_service):
        service, _, rca, _, _ = tiny_service
        assert rca.fitted
        before = service.metrics.histogram("serving.fit.rca").count
        service.rank_root_causes(rca.dataset.states[0])
        assert service.metrics.histogram("serving.fit.rca").count == before

    def test_state_for_inference(self, tiny_service):
        from repro.tasks.rca import state_for_inference
        service, _, rca, _, _ = tiny_service
        labelled = rca.dataset.states[0]
        state = state_for_inference(labelled.node_names, labelled.adjacency,
                                    labelled.features)
        ranking = service.rank_root_causes(state)
        assert len(ranking) == labelled.num_nodes


class TestServerLoop:
    def test_serve_loop_roundtrip(self):
        with FaultAnalysisService(RandomProvider(dim=4, seed=0),
                                  config=_fast_config()) as service:
            requests = "\n".join([
                json.dumps({"op": "ping"}),
                json.dumps({"op": "embed", "names": ["a", "b"]}),
                "",                                   # blank lines skipped
                json.dumps({"op": "embed", "names": ["a"]}),
                json.dumps({"op": "stats"}),
                "not json",
                json.dumps({"op": "embed", "names": []}),
            ])
            output = io.StringIO()
            served = serve_loop(service, io.StringIO(requests), output)
            responses = [json.loads(line)
                         for line in output.getvalue().splitlines()]
        assert served == 6
        assert responses[0] == {"ok": True, "op": "ping"}
        assert len(responses[1]["embeddings"]) == 2
        # Same name, same vector across requests (cache coherent).
        assert responses[2]["embeddings"][0] == responses[1]["embeddings"][0]
        stats = responses[3]
        assert stats["requests"] == 2 and stats["cache"]["hits"] == 1
        assert stats["latency"]["count"] == 2
        assert not responses[4]["ok"] and not responses[5]["ok"]

    def test_handle_request_rejects_bad_shapes(self):
        with FaultAnalysisService(RandomProvider(dim=4, seed=0),
                                  config=_fast_config()) as service:
            for bad in ({"op": "embed", "names": "a"},
                        {"op": "embed", "names": [1]},
                        {"op": "classify_fault"},
                        {"op": "nope"}, {}):
                with pytest.raises(ValueError):
                    handle_request(service, bad)

    def test_rca_op_matches_facade(self, tiny_service):
        service, _, rca, _, _ = tiny_service
        state = rca.dataset.states[0]
        request = {"op": "rca",
                   "nodes": list(state.node_names),
                   "adjacency": state.adjacency.tolist(),
                   "features": state.features.tolist()}
        response = handle_request(service, request)
        assert response["ok"] and response["op"] == "rca"
        ranking = response["ranking"]
        assert sorted(r["node"] for r in ranking) == sorted(state.node_names)
        scores = [r["score"] for r in ranking]
        assert scores == sorted(scores, reverse=True)
        top2 = handle_request(service, {**request, "top_k": 2})["ranking"]
        assert top2 == ranking[:2]

    def test_eap_op_matches_facade(self, tiny_service):
        service, _, _, eap, _ = tiny_service
        pairs = eap.dataset.pairs[:3]
        request = {"op": "eap", "pairs": [
            {"name_i": p.name_i, "name_j": p.name_j,
             "node_i": p.node_i, "node_j": p.node_j,
             "time_i": p.time_i, "time_j": p.time_j}
            for p in pairs]}
        response = handle_request(service, request)
        assert response["ok"] and response["op"] == "eap"
        assert len(response["verdicts"]) == 3
        for verdict in response["verdicts"]:
            assert isinstance(verdict["triggers"], bool)
            assert 0.0 <= verdict["confidence"] <= 1.0
        # JSON round-trip safe (the server writes one line per response).
        json.loads(json.dumps(response))

    def test_rca_eap_ops_reject_bad_shapes(self, tiny_service):
        service, _, rca, _, _ = tiny_service
        state = rca.dataset.states[0]
        nodes = list(state.node_names)
        good_adj = state.adjacency.tolist()
        good_feat = state.features.tolist()
        bad_requests = [
            {"op": "rca"},                                  # nothing at all
            {"op": "rca", "nodes": "a"},                    # not a list
            {"op": "rca", "nodes": nodes, "adjacency": "x",
             "features": good_feat},                        # non-numeric
            {"op": "rca", "nodes": nodes, "adjacency": [[0.0]],
             "features": good_feat},                        # wrong shape
            {"op": "rca", "nodes": nodes, "adjacency": good_adj,
             "features": [[0.0]]},                          # wrong rows
            {"op": "eap"},                                  # nothing at all
            {"op": "eap", "pairs": []},                     # empty
            {"op": "eap", "pairs": [{"name_i": "a"}]},      # missing fields
            {"op": "eap", "pairs": [
                {"name_i": "a", "name_j": "b", "node_i": "n",
                 "node_j": "m", "time_i": "soon", "time_j": 1.0}]},
        ]
        for bad in bad_requests:
            with pytest.raises(ValueError):
                handle_request(service, bad)


class TestServeCli:
    def test_serve_stats_reports_metrics(self, capsys, monkeypatch):
        from repro.cli import main

        requests = "\n".join([
            json.dumps({"op": "ping"}),
            json.dumps({"op": "embed", "names": ["link failure", "storm"]}),
            json.dumps({"op": "embed", "names": ["link failure"]}),
            json.dumps({"op": "stats"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        code = main(["serve", "--dim", "8", "--max-wait-ms", "2", "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        responses = [json.loads(line)
                     for line in captured.out.strip().splitlines()]
        assert all(r["ok"] for r in responses)
        # Acceptance: request count, cache hit rate, p50/p95 latency.
        assert "requests: 2" in captured.err
        assert "cache hit rate:" in captured.err
        assert "p50" in captured.err and "p95" in captured.err
        assert "== serving stats ==" in captured.err

    def test_serve_with_store_and_fallback_flags(self, capsys, monkeypatch,
                                                 tmp_path):
        from repro.cli import main

        line = json.dumps({"op": "embed", "names": ["alarm"]}) + "\n"
        for _ in range(2):  # second run warms from the persisted store
            monkeypatch.setattr("sys.stdin", io.StringIO(line))
            assert main(["serve", "--dim", "4", "--store", str(tmp_path),
                         "--fallback", "--max-wait-ms", "2"]) == 0
        out_lines = capsys.readouterr().out.strip().splitlines()
        first, second = (json.loads(l) for l in out_lines)
        assert first["embeddings"] == second["embeddings"]
        assert (tmp_path / "embeddings.jsonl").exists()
