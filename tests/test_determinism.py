"""End-to-end determinism: identical seeds must give identical results.

Reproducibility is a design requirement (DESIGN.md §6): every stochastic
component takes an explicit generator or seed, so rebuilding any pipeline
stage with the same seed must produce bit-identical artifacts.
"""

import numpy as np

from repro import ExperimentPipeline, PipelineConfig, TelecomWorld
from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg, serialize_kg
from repro.models import TeleBertTrainer
from repro.training.stage2 import build_stage2_data


def _micro_config(seed=0):
    return PipelineConfig(seed=seed, num_episodes=10, stage1_steps=3,
                          stage2_steps=3, generic_sentences=50,
                          alarms_per_theme=2, kpis_per_theme=2,
                          topology_nodes=6)


class TestWorldDeterminism:
    def test_episodes_identical(self):
        a = TelecomWorld.generate(seed=5).simulate_episodes(5)
        b = TelecomWorld.generate(seed=5).simulate_episodes(5)
        for left, right in zip(a, b):
            assert left.root_uid == right.root_uid
            assert left.chain == right.chain
            assert [(r.timestamp, r.event_uid, r.value) for r in left.records] == \
                [(r.timestamp, r.event_uid, r.value) for r in right.records]

    def test_kg_serialisation_identical(self):
        a = serialize_kg(build_tele_kg(TelecomWorld.generate(seed=5)))
        b = serialize_kg(build_tele_kg(TelecomWorld.generate(seed=5)))
        assert a == b

    def test_corpus_identical(self):
        world = TelecomWorld.generate(seed=5)
        assert build_tele_corpus(world, seed=2).sentences == \
            build_tele_corpus(world, seed=2).sentences


class TestTrainingDeterminism:
    def test_telebert_training_identical(self):
        world = TelecomWorld.generate(seed=7, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        corpus = build_tele_corpus(world, seed=7)

        def train():
            trainer = TeleBertTrainer(corpus.sentences, seed=3, d_model=16,
                                      num_layers=1, num_heads=2, d_ff=32,
                                      max_len=24, batch_size=8)
            trainer.train(steps=5)
            return trainer

        a, b = train(), train()
        assert a.log.total == b.log.total
        assert np.array_equal(
            a.encoder.token_embedding.weight.data,
            b.encoder.token_embedding.weight.data)

    def test_stage2_data_identical(self):
        world = TelecomWorld.generate(seed=7, alarms_per_theme=2,
                                      kpis_per_theme=2, topology_nodes=6)
        corpus = build_tele_corpus(world, seed=7)
        kg = build_tele_kg(world)
        episodes = world.simulate_episodes(4)
        a = build_stage2_data(corpus, episodes, kg, seed=1, ke_negatives=2)
        b = build_stage2_data(corpus, episodes, kg, seed=1, ke_negatives=2)
        assert [r.text for r in a.mask_rows] == [r.text for r in b.mask_rows]
        assert a.triple_rows == b.triple_rows
        assert a.normalizer.ranges == b.normalizer.ranges


class TestPipelineDeterminism:
    def test_ktelebert_service_embeddings_identical(self):
        texts = ["[ALM] The link is down", "[DOC] check complete"]

        def build():
            pipeline = ExperimentPipeline(_micro_config(seed=4))
            return pipeline.ktelebert_stl.encode_texts(texts)

        assert np.array_equal(build(), build())

    def test_different_seeds_differ(self):
        a = ExperimentPipeline(_micro_config(seed=1))
        b = ExperimentPipeline(_micro_config(seed=2))
        va = a.ktelebert_stl.encode_texts(["[ALM] The link is down"])
        vb = b.ktelebert_stl.encode_texts(["[ALM] The link is down"])
        assert va.shape == vb.shape
        assert not np.allclose(va, vb)


class TestGlobalRngIsolation:
    """RL005's runtime counterpart: library code must not draw from (or
    reseed) the process-global RNG streams — hidden global state is
    exactly what breaks the bit-exact resume guarantee of
    :mod:`repro.training.runtime`."""

    def test_pipeline_leaves_global_numpy_rng_untouched(self):
        np.random.seed(1234)
        before = np.random.get_state()
        world = TelecomWorld.generate(seed=5)
        corpus = build_tele_corpus(world, seed=5)
        build_tele_kg(world)
        world.simulate_episodes(3)
        trainer = TeleBertTrainer(corpus.sentences, seed=5, d_model=16,
                                  num_layers=1, num_heads=2, d_ff=32,
                                  max_len=16)
        trainer.train(steps=2)
        after = np.random.get_state()
        assert before[0] == after[0]
        assert np.array_equal(before[1], after[1])
        assert before[2:] == after[2:]

    def test_pipeline_leaves_global_stdlib_rng_untouched(self):
        import random

        random.seed(1234)
        before = random.getstate()
        world = TelecomWorld.generate(seed=5)
        build_stage2_data(build_tele_corpus(world, seed=5),
                          world.simulate_episodes(3),
                          build_tele_kg(world), seed=5, ke_negatives=2)
        assert random.getstate() == before
