"""Tests for the fault-tolerant training runtime.

Covers the three runtime pillars end to end: atomic snapshots with
retention, bit-exact kill-and-resume (serial and data-parallel), and the
JSONL run journal (including its replay into serving metrics), plus the
optimizer state round-trips the snapshots depend on.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.corpus import build_tele_corpus
from repro.kg import build_tele_kg
from repro.models import (
    KTeleBert,
    KTeleBertConfig,
    TeleBertTrainer,
    atomic_write_bytes,
    model_fingerprint,
)
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, LinearWarmupSchedule
from repro.serving import replay_journal
from repro.training import build_strategy
from repro.training.retrainer import KTeleBertRetrainer
from repro.training.runtime import (
    GradientWorkerPool,
    RunJournal,
    RuntimeConfig,
    SnapshotStore,
    TrainingRuntime,
    WorkerPoolError,
)
from repro.training.shm import PoolSharedState, SharedArray
from repro.training.stage2 import build_stage2_data
from repro.world import TelecomWorld

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_pool(retrainer, num_workers=2, **kwargs):
    """Build a GradientWorkerPool wired like TrainingRuntime does."""
    capacity = retrainer.mask_batches.batch_size + (
        retrainer.ke_batches.batch_size
        if retrainer.ke_batches is not None else 0)
    return GradientWorkerPool(
        retrainer.model, num_workers, base_seed=retrainer.seed,
        mask_rows=retrainer.data.mask_rows,
        triple_rows=retrainer.data.triple_rows,
        index_capacity=capacity, **kwargs)


def segment_gone(name: str) -> bool:
    """True when the named shared-memory segment no longer exists."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


# ----------------------------------------------------------------------
# Shared fixture: a deterministic factory for identically-built loops
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stack():
    """The stage-1 artifacts every retrainer in this module is built from."""
    world = TelecomWorld.generate(seed=61, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=6)
    corpus = build_tele_corpus(world, seed=61)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(3)
    trainer = TeleBertTrainer(corpus.sentences, seed=61, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32, max_len=20)
    trainer.train(steps=2)
    data = build_stage2_data(corpus, episodes, kg, seed=61, ke_negatives=2)
    return trainer, data


def make_retrainer(stack, total_steps=6, strategy="pmtl"):
    """Build a fresh, identically-initialised stage-2 loop every call."""
    trainer, data = stack
    model = KTeleBert.from_telebert(
        trainer, KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=61)
    return KTeleBertRetrainer(model, data, build_strategy(strategy,
                                                          total_steps),
                              seed=7, batch_size=4, ke_batch_size=2)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_write_and_overwrite(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"first")
        assert target.read_bytes() == b"first"
        atomic_write_bytes(target, b"second")
        assert target.read_bytes() == b"second"

    def test_creates_missing_parent(self, tmp_path):
        target = tmp_path / "a" / "b" / "blob.bin"
        atomic_write_bytes(target, b"x")
        assert target.read_bytes() == b"x"

    def test_no_temp_residue(self, tmp_path):
        atomic_write_bytes(tmp_path / "blob.bin", b"payload")
        assert os.listdir(tmp_path) == ["blob.bin"]

    def test_failure_leaves_previous_content(self, tmp_path, monkeypatch):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"stable")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.ioutil.os.replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"torn")
        monkeypatch.undo()
        assert target.read_bytes() == b"stable"
        assert os.listdir(tmp_path) == ["blob.bin"]


# ----------------------------------------------------------------------
# Optimizer state round-trips
# ----------------------------------------------------------------------
def _make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.normal(size=(3, 2))), Parameter(rng.normal(size=4))]


def _deterministic_steps(optimizer, params, steps, seed):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for param in params:
            param.grad = rng.normal(size=param.data.shape)
        optimizer.step()


class TestOptimizerState:
    @pytest.mark.parametrize("factory", [
        lambda params: Adam(params, lr=0.01, weight_decay=0.01),
        lambda params: AdamW(params, lr=0.01, weight_decay=0.01),
        lambda params: SGD(params, lr=0.01, momentum=0.9),
    ])
    def test_round_trip_is_bit_exact(self, factory):
        params_a = _make_params()
        optim_a = factory(params_a)
        _deterministic_steps(optim_a, params_a, 3, seed=5)
        state = optim_a.state_dict()
        frozen = [param.data.copy() for param in params_a]

        params_b = [Parameter(data.copy()) for data in frozen]
        optim_b = factory(params_b)
        optim_b.load_state_dict(state)
        _deterministic_steps(optim_a, params_a, 2, seed=6)
        _deterministic_steps(optim_b, params_b, 2, seed=6)
        for left, right in zip(params_a, params_b):
            assert np.array_equal(left.data, right.data)

    def test_adam_scalars_and_step_counter_restored(self):
        params = _make_params()
        optim = Adam(params, lr=0.01, betas=(0.8, 0.99), eps=1e-6,
                     weight_decay=0.1)
        _deterministic_steps(optim, params, 4, seed=1)
        restored = Adam(_make_params(), lr=0.5)
        restored.load_state_dict(optim.state_dict())
        assert restored.lr == 0.01
        assert restored.betas == (0.8, 0.99)
        assert restored.eps == 1e-6
        assert restored.weight_decay == 0.1
        assert restored._t == 4

    def test_kind_mismatch_rejected(self):
        adam_state = Adam(_make_params(), lr=0.01).state_dict()
        with pytest.raises(ValueError, match="adam"):
            SGD(_make_params(), lr=0.01).load_state_dict(adam_state)

    def test_adamw_state_is_not_adam_state(self):
        adamw_state = AdamW(_make_params(), lr=0.01).state_dict()
        assert adamw_state["kind"] == "adamw"
        with pytest.raises(ValueError):
            Adam(_make_params(), lr=0.01).load_state_dict(adamw_state)

    def test_shape_mismatch_rejected(self):
        state = Adam(_make_params(), lr=0.01).state_dict()
        other = [Parameter(np.zeros((5, 5))), Parameter(np.zeros(4))]
        with pytest.raises(ValueError, match="shape"):
            Adam(other, lr=0.01).load_state_dict(state)

    def test_missing_moment_rejected(self):
        state = Adam(_make_params(), lr=0.01).state_dict()
        del state["arrays"]["v/1"]
        with pytest.raises(ValueError, match="v/1"):
            Adam(_make_params(), lr=0.01).load_state_dict(state)

    def test_schedule_round_trip(self):
        params = _make_params()
        schedule = LinearWarmupSchedule(Adam(params, lr=0.0), peak_lr=0.1,
                                        warmup_steps=4, total_steps=10)
        for _ in range(6):
            schedule.step()
        clone = LinearWarmupSchedule(Adam(_make_params(), lr=0.0),
                                     peak_lr=1.0, warmup_steps=1,
                                     total_steps=2)
        clone.load_state_dict(schedule.state_dict())
        assert [clone.step() for _ in range(3)] == \
            [schedule.step() for _ in range(3)]


# ----------------------------------------------------------------------
# Run journal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_append_and_read_back(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("run_start", step=0)
        journal.append("step", step=1, loss=2.5)
        events = journal.events()
        assert [e["kind"] for e in events] == ["run_start", "step"]
        assert events[1]["loss"] == 2.5
        assert all("time" in e for e in events)

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("step", step=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "step", "ste')  # crash mid-write
        assert [e["kind"] for e in journal.events()] == ["step"]

    def test_interrupted_detection(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        assert not journal.is_interrupted()  # no journal at all
        journal.append("run_start", step=0)
        journal.append("step", step=1)
        assert journal.is_interrupted()
        journal.append("run_complete", step=1)
        assert not journal.is_interrupted()


# ----------------------------------------------------------------------
# Snapshot store retention
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep_last=0)

    def test_retention_keeps_recent_and_best(self, stack, tmp_path):
        retrainer = make_retrainer(stack)
        store = SnapshotStore(tmp_path / "snaps", keep_last=2)
        losses = {1: 5.0, 2: 1.0, 3: 3.0, 4: 2.0}
        for step, loss in losses.items():
            store.save(retrainer.model, retrainer.optimizer,
                       retrainer.state_dict(), step=step, loss=loss)
        kept = {path.name for path in store.directory.glob("step-*.npz")}
        # Newest two (3, 4) plus the best-loss snapshot (2); 1 is pruned.
        assert kept == {"step-00000002.npz", "step-00000003.npz",
                        "step-00000004.npz"}
        assert set(store.index()) == kept
        assert store.latest().name == "step-00000004.npz"
        assert store.best().name == "step-00000002.npz"

    def test_load_latest_round_trips_metadata(self, stack, tmp_path):
        retrainer = make_retrainer(stack)
        store = SnapshotStore(tmp_path / "snaps", keep_last=3)
        store.save(retrainer.model, retrainer.optimizer,
                   retrainer.state_dict(), step=7, loss=1.25,
                   extra={"reason": "test"})
        state = store.load_latest()
        assert state.step == 7
        assert state.loss == 1.25
        assert state.extra["reason"] == "test"
        assert state.trainer_state["step"] == retrainer.step_index

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        assert store.latest() is None
        assert store.best() is None
        assert store.load_latest() is None

    def test_index_survives_deletion(self, stack, tmp_path):
        """A missing index falls back to scanning the snapshot files."""
        retrainer = make_retrainer(stack)
        store = SnapshotStore(tmp_path / "snaps", keep_last=2)
        store.save(retrainer.model, retrainer.optimizer,
                   retrainer.state_dict(), step=3, loss=2.0)
        store._index_path.unlink()
        assert store.latest().name == "step-00000003.npz"


# ----------------------------------------------------------------------
# Retrainer loop-state validation
# ----------------------------------------------------------------------
class TestRetrainerState:
    def test_strategy_mismatch_rejected(self, stack):
        source = make_retrainer(stack, total_steps=6, strategy="pmtl")
        target = make_retrainer(stack, total_steps=8, strategy="pmtl")
        with pytest.raises(ValueError, match="strategy"):
            target.load_state_dict(source.state_dict())

    def test_state_is_json_serialisable(self, stack):
        retrainer = make_retrainer(stack)
        retrainer.train_step()
        json.dumps(retrainer.state_dict())


# ----------------------------------------------------------------------
# Kill-and-resume: the bit-exact continuation guarantee
# ----------------------------------------------------------------------
def _run_to_completion(stack, run_dir, workers=1, total_steps=6):
    retrainer = make_retrainer(stack, total_steps=total_steps)
    runtime = TrainingRuntime(retrainer, RuntimeConfig(
        run_dir=run_dir, workers=workers, checkpoint_every_steps=2,
        handle_signals=False))
    runtime.run()
    return retrainer, runtime


@pytest.mark.slow
class TestKillAndResume:
    def test_serial_resume_is_bit_exact(self, stack, tmp_path):
        # Reference: one uninterrupted run.
        reference, _ = _run_to_completion(stack, tmp_path / "ref")

        # Interrupted run: stop after 3 of 6 steps.  Cadence checkpointed
        # at step 2; the max_steps exit checkpoints step 3 as well, so no
        # completed progress is lost.
        first = make_retrainer(stack)
        runtime = TrainingRuntime(first, RuntimeConfig(
            run_dir=tmp_path / "run", workers=1, checkpoint_every_steps=2,
            handle_signals=False))
        runtime.run(max_steps=3)
        assert runtime.journal.is_interrupted()
        reasons = [e["reason"] for e in runtime.journal.events()
                   if e["kind"] == "checkpoint"]
        assert reasons == ["cadence", "max_steps"]

        # Resume in a brand-new process stand-in: a fresh, identically
        # built loop restored from the latest snapshot.
        second = make_retrainer(stack)
        resumed = TrainingRuntime(second, RuntimeConfig(
            run_dir=tmp_path / "run", workers=1, checkpoint_every_steps=2,
            handle_signals=False))
        resumed_step = resumed.resume_if_available()
        assert resumed_step == 3
        resumed.run()

        assert second.log.total == reference.log.total
        assert second.log.mask == reference.log.mask
        assert second.log.ke == reference.log.ke
        assert model_fingerprint(second.model) == \
            model_fingerprint(reference.model)
        assert not resumed.journal.is_interrupted()

    def test_resume_without_snapshot_is_noop(self, stack, tmp_path):
        retrainer = make_retrainer(stack)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "fresh", handle_signals=False))
        assert runtime.resume_if_available() is None
        assert retrainer.step_index == 0

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_resume_matches_uninterrupted_parallel(self, stack,
                                                            tmp_path):
        reference, ref_runtime = _run_to_completion(stack, tmp_path / "ref",
                                                    workers=2)
        kinds = [e["kind"] for e in ref_runtime.journal.events()]
        assert "fallback_serial" not in kinds

        first = make_retrainer(stack)
        runtime = TrainingRuntime(first, RuntimeConfig(
            run_dir=tmp_path / "run", workers=2, checkpoint_every_steps=2,
            handle_signals=False))
        runtime.run(max_steps=2)
        # The cadence checkpoint already covered step 2, so the max_steps
        # exit must not write a duplicate snapshot of the same step.
        checkpoints = [e for e in runtime.journal.events()
                       if e["kind"] == "checkpoint"]
        assert [e["reason"] for e in checkpoints] == ["cadence"]

        second = make_retrainer(stack)
        resumed = TrainingRuntime(second, RuntimeConfig(
            run_dir=tmp_path / "run", workers=2, checkpoint_every_steps=2,
            handle_signals=False))
        assert resumed.resume_if_available() == 2
        resumed.run()

        assert second.log.total == reference.log.total
        assert model_fingerprint(second.model) == \
            model_fingerprint(reference.model)

    def test_journal_records_lifecycle(self, stack, tmp_path):
        _, runtime = _run_to_completion(stack, tmp_path / "run")
        kinds = [e["kind"] for e in runtime.journal.events()]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_complete"
        steps = [e for e in runtime.journal.events() if e["kind"] == "step"]
        assert len(steps) == 6
        assert all(np.isfinite(e["loss"]) for e in steps)
        assert all(e["wall_s"] > 0 for e in steps)


# ----------------------------------------------------------------------
# Worker pool failure modes
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_pool_needs_two_workers(self, stack):
        retrainer = make_retrainer(stack)
        with pytest.raises(ValueError):
            GradientWorkerPool(retrainer.model, num_workers=1, base_seed=0)

    def test_startup_failure_degrades_to_serial(self, stack, tmp_path,
                                                monkeypatch):
        def broken_pool(*args, **kwargs):
            raise WorkerPoolError("injected startup failure")

        monkeypatch.setattr("repro.training.runtime.GradientWorkerPool",
                            broken_pool)
        retrainer = make_retrainer(stack, total_steps=2)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=4, handle_signals=False))
        log = runtime.run()
        assert len(log.total) == 2
        assert all(np.isfinite(v) for v in log.total)
        kinds = [e["kind"] for e in runtime.journal.events()]
        assert "fallback_serial" in kinds
        assert kinds[-1] == "run_complete"

    @pytest.mark.slow
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_straggler_timeout_degrades_to_serial(self, stack, tmp_path):
        retrainer = make_retrainer(stack, total_steps=2)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=2, straggler_timeout_s=0.0,
            handle_signals=False))
        log = runtime.run()
        assert len(log.total) == 2
        events = runtime.journal.events()
        fallbacks = [e for e in events if e["kind"] == "fallback_serial"]
        assert fallbacks and "straggler" in fallbacks[0]["reason"]

    @pytest.mark.slow
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_worker_death_mid_step_raises_pool_error(self, stack):
        """A killed worker must surface as WorkerPoolError, not EOFError."""
        retrainer = make_retrainer(stack)
        pool = make_pool(retrainer)
        names = pool.segment_names
        try:
            tasks = retrainer.advance()
            _, row_idx, _, triple_idx = (
                retrainer.draw_batches_with_indices(tasks))
            grads, losses = pool.step(0, row_idx, triple_idx)
            assert np.isfinite(losses.value)

            victim = pool._workers[0].process
            victim.kill()
            victim.join(timeout=10)
            tasks = retrainer.advance()
            _, row_idx, _, triple_idx = (
                retrainer.draw_batches_with_indices(tasks))
            with pytest.raises(WorkerPoolError):
                pool.step(1, row_idx, triple_idx)
        finally:
            pool.close()
        # The parent owns the segments: a crashed worker leaks nothing.
        assert all(segment_gone(name) for name in names)

    @pytest.mark.slow
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_kill_worker_mid_run_degrades_to_serial(self, stack, tmp_path):
        """The run survives a worker kill: journaled fallback, no crash."""
        retrainer = make_retrainer(stack, total_steps=4)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=2, handle_signals=False))
        runtime.train_step()
        names = runtime._pool.segment_names
        victim = runtime._pool._workers[0].process
        victim.kill()
        victim.join(timeout=10)

        log = runtime.run()
        assert len(log.total) == 4
        assert all(np.isfinite(v) for v in log.total)
        kinds = [e["kind"] for e in runtime.journal.events()]
        assert "fallback_serial" in kinds
        assert kinds[-1] == "run_complete"
        assert all(segment_gone(name) for name in names)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pipes_carry_only_small_control_messages(self, stack):
        """The hot path never pickles arrays: control tuples only."""
        import pickle

        class SpyConn:
            def __init__(self, conn, log):
                self._conn = conn
                self._log = log

            def send(self, obj):
                self._log.append(obj)
                self._conn.send(obj)

            def recv(self):
                obj = self._conn.recv()
                self._log.append(obj)
                return obj

            def __getattr__(self, name):  # poll/fileno/close passthrough
                return getattr(self._conn, name)

        def has_array(obj):
            if isinstance(obj, np.ndarray):
                return True
            if isinstance(obj, (list, tuple, set)):
                return any(has_array(item) for item in obj)
            if isinstance(obj, dict):
                return any(has_array(v) for v in obj.values())
            return False

        retrainer = make_retrainer(stack)
        pool = make_pool(retrainer)
        messages: list = []
        try:
            for handle in pool._workers:
                handle.conn = SpyConn(handle.conn, messages)
            for step in range(2):
                tasks = retrainer.advance()
                _, row_idx, _, triple_idx = (
                    retrainer.draw_batches_with_indices(tasks))
                pool.step(step, row_idx, triple_idx)
        finally:
            pool.close()
        assert messages
        for message in messages:
            assert not has_array(message), message
            assert len(pickle.dumps(message)) < 1024

    @pytest.mark.slow
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_grads_match_serial_emulation(self, stack):
        """The shared-memory reduction equals the per-shard math in-process."""
        from repro.training.masking import DynamicMasker
        from repro.training.retrainer import compute_stage2_losses

        retrainer = make_retrainer(stack)
        model = retrainer.model
        params = model.parameters()
        num_workers = 2
        pool = make_pool(retrainer, num_workers=num_workers)
        try:
            tasks = retrainer.advance()
            rows, row_idx, triples, triple_idx = (
                retrainer.draw_batches_with_indices(tasks))
            step = retrainer.step_index - 1
            grads, _ = pool.step(step, row_idx, triple_idx)
            reduced = np.concatenate([g.ravel() for g in grads])
        finally:
            pool.close()

        # Emulate each worker in the parent with the same step-keyed RNG
        # streams, then form the same shard-weighted mean.
        saved_model_rng = model.rng.bit_generator.state
        rows = rows or []
        triples = triples or []

        def bounds(n):
            return np.linspace(0, n, num_workers + 1).astype(int)

        row_bounds, triple_bounds = bounds(len(rows)), bounds(len(triples))
        shards = []
        for wid in range(num_workers):
            shard_rows = rows[row_bounds[wid]:row_bounds[wid + 1]]
            shard_triples = triples[triple_bounds[wid]:
                                    triple_bounds[wid + 1]]
            weight = len(shard_rows) + len(shard_triples)
            if weight:
                shards.append((wid, shard_rows, shard_triples, weight))
        total_weight = sum(w for *_, w in shards)
        expected = np.zeros_like(reduced)
        for wid, shard_rows, shard_triples, weight in shards:
            masker = DynamicMasker(model.tokenizer.vocab,
                                   np.random.default_rng(0),
                                   masking_rate=model.config.masking_rate)
            masker.rng = np.random.default_rng([retrainer.seed, wid, step])
            model.rng.bit_generator.state = np.random.default_rng(
                [retrainer.seed, wid, step, 1]).bit_generator.state
            for param in params:
                param.zero_grad()
            losses = compute_stage2_losses(model, masker,
                                           shard_rows or None,
                                           shard_triples or None)
            losses.total.backward()
            flat = np.concatenate(
                [(param.grad if param.grad is not None
                  else np.zeros_like(param.data)).ravel()
                 for param in params])
            expected += flat * (weight / total_weight)
        for param in params:
            param.zero_grad()
        model.rng.bit_generator.state = saved_model_rng

        assert np.isfinite(expected).all()
        np.testing.assert_allclose(reduced, expected, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_shared_array_close_unlinks(self):
        array = SharedArray((8,))
        array.array[:] = np.arange(8)
        name = array.name
        assert not segment_gone(name)
        array.close()
        assert segment_gone(name)
        array.close()  # idempotent

    def test_pool_state_close_unlinks_every_block(self):
        state = PoolSharedState(param_size=16, num_workers=3,
                                index_capacity=8)
        names = state.segment_names
        assert len(names) == 5  # params + 3 grads + indices
        state.close()
        assert all(segment_gone(name) for name in names)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pool_close_removes_segments(self, stack):
        retrainer = make_retrainer(stack)
        pool = make_pool(retrainer)
        names = pool.segment_names
        assert names and not any(segment_gone(name) for name in names)
        pool.close()
        assert all(segment_gone(name) for name in names)
        with pytest.raises(WorkerPoolError):
            pool.step(0, [0], None)


# ----------------------------------------------------------------------
# Pool retry / re-enable semantics
# ----------------------------------------------------------------------
class TestPoolRetry:
    def test_repeated_failures_disable_parallelism(self, stack, tmp_path,
                                                   monkeypatch):
        calls = {"count": 0}

        def broken_pool(*args, **kwargs):
            calls["count"] += 1
            raise WorkerPoolError("injected failure")

        monkeypatch.setattr("repro.training.runtime.GradientWorkerPool",
                            broken_pool)
        retrainer = make_retrainer(stack, total_steps=6)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=4, pool_retry_steps=1,
            pool_max_failures=2, handle_signals=False))
        log = runtime.run()
        assert len(log.total) == 6
        fallbacks = [e for e in runtime.journal.events()
                     if e["kind"] == "fallback_serial"]
        assert [e["permanent"] for e in fallbacks] == [False, True]
        assert fallbacks[0]["retry_in_steps"] == 1
        assert fallbacks[1]["failures"] == 2
        # step 0 fails, step 1 cools down, step 2 retries and fails for
        # good: no further build attempts after the permanent disable.
        assert calls["count"] == 2

    def test_zero_retry_steps_keeps_first_failure_final(self, stack,
                                                        tmp_path,
                                                        monkeypatch):
        calls = {"count": 0}

        def broken_pool(*args, **kwargs):
            calls["count"] += 1
            raise WorkerPoolError("injected failure")

        monkeypatch.setattr("repro.training.runtime.GradientWorkerPool",
                            broken_pool)
        retrainer = make_retrainer(stack, total_steps=4)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=4, pool_retry_steps=0,
            handle_signals=False))
        runtime.run()
        fallbacks = [e for e in runtime.journal.events()
                     if e["kind"] == "fallback_serial"]
        assert [e["permanent"] for e in fallbacks] == [True]
        assert calls["count"] == 1

    @pytest.mark.slow
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_transient_failure_reenables_parallelism(self, stack, tmp_path,
                                                     monkeypatch):
        import repro.training.runtime as runtime_mod

        real_pool = GradientWorkerPool
        calls = {"count": 0}

        def flaky_pool(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise WorkerPoolError("injected transient failure")
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "GradientWorkerPool", flaky_pool)
        retrainer = make_retrainer(stack, total_steps=5)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", workers=2, pool_retry_steps=1,
            handle_signals=False))
        log = runtime.run()
        assert len(log.total) == 5
        events = runtime.journal.events()
        fallbacks = [e for e in events if e["kind"] == "fallback_serial"]
        rebuilds = [e for e in events if e["kind"] == "pool_rebuilt"]
        # One transient failure, one cooldown step, then parallel again.
        assert [e["permanent"] for e in fallbacks] == [False]
        assert len(rebuilds) == 1
        assert rebuilds[0]["after_failures"] == 1
        assert calls["count"] == 2


# ----------------------------------------------------------------------
# max_steps checkpoint semantics
# ----------------------------------------------------------------------
class TestMaxStepsCheckpoint:
    def test_max_steps_exit_writes_a_checkpoint(self, stack, tmp_path):
        retrainer = make_retrainer(stack, total_steps=6)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=tmp_path / "run", checkpoint_every_steps=50,
            handle_signals=False))
        runtime.run(max_steps=3)
        events = runtime.journal.events()
        checkpoints = [e for e in events if e["kind"] == "checkpoint"]
        assert ([(e["reason"], e["step"]) for e in checkpoints]
                == [("max_steps", 3)])
        assert events[-1]["kind"] == "run_paused"
        assert runtime.journal.is_interrupted()
        latest = runtime.snapshots.load_latest()
        assert latest is not None and latest.step == 3


# ----------------------------------------------------------------------
# Journal replay into serving metrics
# ----------------------------------------------------------------------
class TestReplayJournal:
    def test_replay_folds_steps_into_instruments(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("run_start", step=0, workers=1)
        journal.append("step", step=1, loss=4.0, tokens=100,
                       tokens_per_sec=50.0, wall_s=2.0)
        journal.append("step", step=2, loss=2.0, tokens=60,
                       tokens_per_sec=30.0, wall_s=2.0)
        journal.append("run_complete", step=2)
        registry = replay_journal(journal.path)
        snap = registry.snapshot()
        assert snap["counters"]["train.steps"] == 2
        assert snap["counters"]["train.tokens"] == 160
        assert snap["counters"]["train.events.run_start"] == 1
        assert snap["counters"]["train.events.run_complete"] == 1
        assert snap["gauges"]["train.step"] == 2
        assert snap["histograms"]["train.loss"]["mean"] == 3.0
        assert [e["kind"] for e in registry.events] == \
            ["run_start", "run_complete"]

    def test_replay_skips_torn_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "step", "step": 1, "loss": 1.0}\n'
                        '{"kind": "st\n')
        registry = replay_journal(path)
        assert registry.snapshot()["counters"]["train.steps"] == 1

    def test_replay_missing_file_is_empty(self, tmp_path):
        registry = replay_journal(tmp_path / "absent.jsonl")
        assert registry.snapshot()["counters"] == {}

    def test_replay_end_to_end_from_real_run(self, stack, tmp_path):
        _, runtime = _run_to_completion(stack, tmp_path / "run",
                                        total_steps=2)
        registry = replay_journal(runtime.journal.path)
        snap = registry.snapshot()
        assert snap["counters"]["train.steps"] == 2
        assert snap["counters"]["train.tokens"] > 0
        assert snap["histograms"]["train.tokens_per_sec"]["mean"] > 0
