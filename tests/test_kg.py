"""Tests for the Tele-KG substrate: schema, store, builder, query, serialization, sampling."""

import numpy as np
import pytest

from repro.kg import (
    NegativeSampler,
    Pattern,
    TeleKG,
    TeleSchema,
    Variable,
    build_tele_kg,
    query,
    serialize_kg,
    serialize_triple,
)
from repro.kg.query import ask
from repro.world import TelecomWorld


@pytest.fixture(scope="module")
def world():
    return TelecomWorld.generate(seed=8)


@pytest.fixture(scope="module")
def kg(world):
    return build_tele_kg(world)


class TestSchema:
    def test_roots(self):
        schema = TeleSchema()
        assert schema.roots == {"Event", "Resource"}

    def test_subclass_transitivity(self):
        schema = TeleSchema()
        assert schema.is_subclass("KPI", "Event")
        assert schema.is_subclass("NetworkElementInstance", "Resource")
        assert not schema.is_subclass("KPI", "Resource")

    def test_root_of(self):
        schema = TeleSchema()
        assert schema.root_of("Alarm") == "Event"
        assert schema.root_of("Vendor") == "Resource"

    def test_ancestors_ordered(self):
        schema = TeleSchema()
        assert schema.ancestors("KPI") == ["KPIAnomaly", "Event"]

    def test_add_class(self):
        schema = TeleSchema()
        schema.add_class("SignalingFlow", "Event")
        assert schema.is_subclass("SignalingFlow", "Event")

    def test_add_class_validation(self):
        schema = TeleSchema()
        with pytest.raises(ValueError):
            schema.add_class("Alarm", "Event")      # duplicate
        with pytest.raises(ValueError):
            schema.add_class("X", "Nonexistent")    # unknown parent

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            TeleSchema(parents={"A": "B", "B": "A"})

    def test_unknown_parent_detection(self):
        with pytest.raises(ValueError):
            TeleSchema(parents={"A": "Missing"})

    def test_subclass_triples(self):
        schema = TeleSchema()
        triples = schema.subclass_triples()
        assert ("Alarm", "subclassOf", "Event") in triples
        assert all(r == "subclassOf" for _, r, _ in triples)


class TestStore:
    def _small(self):
        kg = TeleKG()
        kg.add_entity("A", "alarm a", "Alarm")
        kg.add_entity("B", "kpi b", "KPI")
        kg.add_triple("A", "trigger", "B")
        kg.add_attribute("B", "unit", "percent")
        return kg

    def test_counts(self):
        kg = self._small()
        assert kg.num_entities == 2
        assert kg.num_triples == 1
        assert kg.num_attributes == 1

    def test_duplicate_triple_deduplicated(self):
        kg = self._small()
        kg.add_triple("A", "trigger", "B")
        assert kg.num_triples == 1

    def test_unknown_entity_in_triple_raises(self):
        kg = self._small()
        with pytest.raises(KeyError):
            kg.add_triple("A", "trigger", "Z")

    def test_unknown_class_raises(self):
        kg = TeleKG()
        with pytest.raises(ValueError):
            kg.add_entity("X", "x", "NotAClass")

    def test_conflicting_reregistration_raises(self):
        kg = self._small()
        with pytest.raises(ValueError):
            kg.add_entity("A", "different surface", "Alarm")

    def test_idempotent_reregistration(self):
        kg = self._small()
        kg.add_entity("A", "alarm a", "Alarm")
        assert kg.num_entities == 2

    def test_entities_by_class_includes_subclasses(self):
        kg = self._small()
        events = kg.entities("Event")
        assert {e.uid for e in events} == {"A", "B"}

    def test_neighbors(self):
        kg = self._small()
        assert kg.neighbors("A") == {"B"}
        assert kg.neighbors("B") == {"A"}

    def test_entity_by_surface(self):
        kg = self._small()
        assert kg.entity_by_surface("alarm a").uid == "A"
        assert kg.entity_by_surface("nope") is None

    def test_attribute_requires_entity(self):
        kg = self._small()
        with pytest.raises(KeyError):
            kg.add_attribute("Z", "unit", "x")


class TestBuilder:
    def test_trigger_triples_match_causal_graph(self, world, kg):
        trigger = {(t.head, t.tail) for t in kg.triples_with_relation("trigger")}
        assert trigger == world.causal_graph.edge_set()

    def test_every_alarm_has_occurs_on(self, world, kg):
        for alarm in world.ontology.alarms:
            assert any(t.relation == "occursOn"
                       for t in kg.triples_from(alarm.uid))

    def test_instances_typed(self, world, kg):
        for node in world.topology.nodes:
            assert any(t.relation == "instanceOf"
                       for t in kg.triples_from(f"NEI-{node}"))

    def test_numeric_attributes_exist(self, kg):
        numeric = [a for a in kg.attributes if a.is_numeric]
        assert len(numeric) >= 2 * len(kg.entities("KPI"))

    def test_connected_to_matches_topology(self, world, kg):
        assert len(kg.triples_with_relation("connectedTo")) == \
            world.topology.num_edges

    def test_describe(self, kg):
        stats = kg.describe()
        assert stats["triples"] == kg.num_triples
        assert stats["entities"] == kg.num_entities


class TestQuery:
    def test_single_pattern_constant(self, world, kg):
        alarm = world.ontology.alarms[0]
        rows = query(kg, [Pattern(alarm.uid, "occursOn", Variable("n"))])
        assert len(rows) == 1
        assert rows[0]["n"] == f"NET-{alarm.ne_type}"

    def test_join_two_patterns(self, world, kg):
        a, k = Variable("a"), Variable("k")
        ne_uid = f"NET-{world.ontology.alarms[0].ne_type}"
        rows = query(kg, [Pattern(a, "occursOn", ne_uid),
                          Pattern(a, "trigger", k)])
        for row in rows:
            assert kg.has_triple(row["a"], "occursOn", ne_uid)
            assert kg.has_triple(row["a"], "trigger", row["k"])

    def test_relation_variable(self, kg):
        triple = kg.triples[0]
        rows = query(kg, [Pattern(triple.head, Variable("r"), triple.tail)])
        assert any(row["r"] == triple.relation for row in rows)

    def test_limit(self, kg):
        rows = query(kg, [Pattern(Variable("h"), "trigger", Variable("t"))],
                     limit=3)
        assert len(rows) == 3

    def test_empty_patterns(self, kg):
        assert query(kg, []) == []

    def test_no_match(self, kg):
        assert query(kg, [Pattern("NOPE", "trigger", Variable("x"))]) == []

    def test_ask(self, kg):
        assert ask(kg, [Pattern(Variable("h"), "trigger", Variable("t"))])
        assert not ask(kg, [Pattern(Variable("h"), "madeUpRel", Variable("t"))])

    def test_shared_variable_constrains(self, kg):
        # ?x trigger ?x should never match (no self loops in causal DAG).
        x = Variable("x")
        assert query(kg, [Pattern(x, "trigger", x)]) == []


class TestSerialization:
    def test_triple_serialisation_uses_surfaces(self, world, kg):
        triple = kg.triples_with_relation("trigger")[0]
        sentence = serialize_triple(kg, triple)
        assert kg.entity(triple.head).surface in sentence
        assert "[REL] trigger" in sentence

    def test_serialize_kg_counts(self, kg):
        all_sentences = serialize_kg(kg, include_attributes=True)
        rel_only = serialize_kg(kg, include_attributes=False)
        assert len(rel_only) == kg.num_triples
        assert len(all_sentences) > len(rel_only)

    def test_significant_attribute_filter(self, kg):
        significant = serialize_kg(kg, significant_only=True)
        everything = serialize_kg(kg, significant_only=False)
        assert len(everything) > len(significant)
        assert not any("theme" in s.split("[ATTR]")[-1] for s in significant
                       if "[ATTR]" in s)


class TestNegativeSampling:
    def test_sample_count(self, kg):
        sampler = NegativeSampler(kg, np.random.default_rng(0))
        triple = kg.triples[0]
        negatives = sampler.corrupt(triple, 10)
        assert len(negatives) == 10

    def test_negatives_not_known_facts(self, kg):
        sampler = NegativeSampler(kg, np.random.default_rng(0))
        known = {(t.head, t.relation, t.tail) for t in kg.triples}
        for triple in kg.triples[:20]:
            for neg in sampler.corrupt(triple, 6):
                assert (neg.head, neg.relation, neg.tail) not in known or \
                    neg == triple  # dense fallback marker

    def test_alternates_head_and_tail(self, kg):
        sampler = NegativeSampler(kg, np.random.default_rng(1))
        triple = kg.triples[0]
        negatives = sampler.corrupt(triple, 8)
        heads_changed = sum(1 for n in negatives if n.head != triple.head)
        tails_changed = sum(1 for n in negatives if n.tail != triple.tail)
        assert heads_changed >= 2 and tails_changed >= 2

    def test_batch(self, kg):
        sampler = NegativeSampler(kg, np.random.default_rng(2))
        out = sampler.batch(kg.triples[:4], 3)
        assert len(out) == 4
        assert all(len(group) == 3 for group in out)
