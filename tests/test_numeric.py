"""Tests for the adaptive numeric encoder stack (Sec. IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.numeric import (
    AdaptiveNumericEncoder,
    ANEncLayer,
    NumericDecoder,
    NumericLossComputer,
    TagClassifier,
    TagNormalizer,
)
from repro.tensor import Tensor


def rng():
    return np.random.default_rng(21)


class TestTagNormalizer:
    def test_fit_transform_range(self):
        norm = TagNormalizer().fit(["a", "a", "b"], [0.0, 10.0, 5.0])
        assert norm.transform_one("a", 0.0) == 0.0
        assert norm.transform_one("a", 10.0) == 1.0
        assert norm.transform_one("a", 5.0) == 0.5

    def test_per_tag_ranges_independent(self):
        norm = TagNormalizer().fit(["a", "a", "b", "b"], [0, 10, 100, 200])
        assert norm.transform_one("b", 150) == 0.5

    def test_unseen_tag_uses_global_range(self):
        norm = TagNormalizer().fit(["a", "a"], [0.0, 100.0])
        assert norm.transform_one("new", 50.0) == 0.5

    def test_clipping_outside_range(self):
        norm = TagNormalizer().fit(["a", "a"], [0.0, 1.0])
        assert norm.transform_one("a", 5.0) == 1.0
        assert norm.transform_one("a", -5.0) == 0.0

    def test_constant_tag_maps_to_half(self):
        norm = TagNormalizer().fit(["a", "a"], [3.0, 3.0])
        assert norm.transform_one("a", 3.0) == 0.5

    def test_inverse_transform(self):
        norm = TagNormalizer().fit(["a", "a"], [10.0, 20.0])
        assert norm.inverse_transform_one("a", 0.5) == 15.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TagNormalizer().transform_one("a", 1.0)

    def test_misaligned_fit_raises(self):
        with pytest.raises(ValueError):
            TagNormalizer().fit(["a"], [1.0, 2.0])

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            TagNormalizer().fit([], [])

    def test_vectorised_transform(self):
        norm = TagNormalizer().fit(["a", "a"], [0.0, 10.0])
        out = norm.transform(["a", "a"], [0.0, 10.0])
        assert np.allclose(out, [0.0, 1.0])


class TestANEncLayer:
    def test_attention_is_distribution(self):
        layer = ANEncLayer(d_model=8, num_meta=4, lora_rank=2, rng=rng())
        tags = Tensor(np.random.default_rng(0).normal(size=(3, 8)))
        attn = layer.attention_scores(tags)
        assert attn.shape == (3, 4)
        assert np.allclose(attn.data.sum(axis=-1), 1.0)

    def test_forward_shape(self):
        layer = ANEncLayer(d_model=8, num_meta=2, lora_rank=2, rng=rng())
        x = Tensor(np.random.default_rng(0).normal(size=(5, 8)))
        tags = Tensor(np.random.default_rng(1).normal(size=(5, 8)))
        assert layer(x, tags).shape == (5, 8)

    def test_indivisible_meta_raises(self):
        with pytest.raises(ValueError):
            ANEncLayer(d_model=9, num_meta=4, lora_rank=2, rng=rng())

    def test_lora_rank_validation(self):
        with pytest.raises(ValueError):
            ANEncLayer(d_model=8, num_meta=2, lora_rank=16, rng=rng())

    def test_different_tags_give_different_mixes(self):
        layer = ANEncLayer(d_model=8, num_meta=4, lora_rank=2, rng=rng())
        x = Tensor(np.ones((2, 8)))
        tags = Tensor(np.random.default_rng(2).normal(0, 3, size=(2, 8)))
        out = layer(x, tags).data
        assert not np.allclose(out[0], out[1])

    def test_value_params_exposed(self):
        layer = ANEncLayer(d_model=8, num_meta=4, lora_rank=2, rng=rng())
        assert len(layer.value_params) == 4
        assert all(p.shape == (8, 8) for p in layer.value_params)


class TestAdaptiveNumericEncoder:
    def _enc(self, layers=2):
        return AdaptiveNumericEncoder(d_model=8, num_layers=layers,
                                      num_meta=4, lora_rank=2, rng=rng())

    def test_forward_shape(self):
        enc = self._enc()
        tags = Tensor(np.random.default_rng(0).normal(size=(6, 8)))
        out = enc(np.linspace(0, 1, 6), tags)
        assert out.shape == (6, 8)

    def test_different_values_different_embeddings(self):
        enc = self._enc()
        tags = Tensor(np.tile(np.random.default_rng(0).normal(size=(1, 8)),
                              (2, 1)))
        out = enc(np.array([0.0, 1.0]), tags).data
        assert not np.allclose(out[0], out[1])

    def test_misaligned_inputs_raise(self):
        enc = self._enc()
        with pytest.raises(ValueError):
            enc(np.zeros(3), Tensor(np.zeros((2, 8))))

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            AdaptiveNumericEncoder(d_model=8, num_layers=0, rng=rng())

    def test_value_transform_matrices_count(self):
        enc = self._enc(layers=3)
        assert len(enc.value_transform_matrices()) == 3 * 4

    def test_gradients_flow_to_meta_embeddings(self):
        enc = self._enc()
        tags = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        enc(np.linspace(0, 1, 4), tags).sum().backward()
        for layer in enc.layers:
            assert layer.meta_embeddings.grad is not None
            assert layer.query_proj.grad is not None
        assert enc.value_lift.grad is not None


class TestHeads:
    def test_ndec_shape(self):
        dec = NumericDecoder(8, rng())
        out = dec(Tensor(np.zeros((5, 8))))
        assert out.shape == (5,)

    def test_tgc_logits_shape(self):
        tgc = TagClassifier(8, num_tags=7, rng=rng())
        out = tgc(Tensor(np.zeros((3, 8))))
        assert out.shape == (3, 7)

    def test_tgc_loss_positive(self):
        tgc = TagClassifier(8, num_tags=4, rng=rng())
        emb = Tensor(np.random.default_rng(0).normal(size=(6, 8)))
        loss = tgc.loss(emb, np.array([0, 1, 2, 3, 0, 1]))
        assert loss.data > 0

    def test_tgc_needs_two_tags(self):
        with pytest.raises(ValueError):
            TagClassifier(8, num_tags=1, rng=rng())


class TestNumericLoss:
    def _setup(self):
        encoder = AdaptiveNumericEncoder(d_model=8, num_layers=1, num_meta=2,
                                         lora_rank=2, rng=rng())
        decoder = NumericDecoder(8, rng())
        tgc = TagClassifier(8, num_tags=3, rng=rng())
        gen = np.random.default_rng(4)
        tags = Tensor(gen.normal(size=(6, 8)))
        values = gen.random(6)
        tag_ids = gen.integers(0, 3, 6)
        h = encoder(values, tags)
        decoded = decoder(h)
        return encoder, decoder, tgc, h, decoded, values, tag_ids

    def test_all_components_present(self):
        encoder, _, tgc, h, decoded, values, tag_ids = self._setup()
        computer = NumericLossComputer()
        out = computer(encoder, h, decoded, values, tgc, tag_ids)
        assert np.isfinite(out.total.data)
        assert out.regression > 0
        assert out.classification > 0
        assert out.contrastive > 0
        assert out.orthogonal >= 0

    def test_optional_tag_classifier(self):
        encoder, _, _, h, decoded, values, _ = self._setup()
        computer = NumericLossComputer(use_tag_classifier=False)
        out = computer(encoder, h, decoded, values)
        assert out.classification == 0.0
        assert computer.awl.num_tasks == 2

    def test_missing_classifier_raises(self):
        encoder, _, _, h, decoded, values, _ = self._setup()
        computer = NumericLossComputer(use_tag_classifier=True)
        with pytest.raises(ValueError):
            computer(encoder, h, decoded, values)

    def test_contrastive_can_be_disabled(self):
        encoder, _, tgc, h, decoded, values, tag_ids = self._setup()
        computer = NumericLossComputer(use_contrastive=False)
        out = computer(encoder, h, decoded, values, tgc, tag_ids)
        assert out.contrastive == 0.0

    def test_training_reduces_regression_loss(self):
        """End-to-end sanity: ANEnc + NDec can learn to reconstruct values."""
        gen = np.random.default_rng(7)
        encoder = AdaptiveNumericEncoder(d_model=8, num_layers=1, num_meta=2,
                                         lora_rank=2,
                                         rng=np.random.default_rng(1))
        decoder = NumericDecoder(8, np.random.default_rng(2))
        tags = Tensor(gen.normal(size=(16, 8)))
        values = gen.random(16)
        params = encoder.parameters() + decoder.parameters()
        opt = nn.Adam(params, lr=1e-2)
        first = None
        from repro.tensor import functional as F
        for step in range(60):
            opt.zero_grad()
            h = encoder(values, tags)
            loss = F.mse_loss(decoder(h), values)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first * 0.5


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=2, max_size=20))
def test_normalizer_output_always_in_unit_interval(values):
    tags = ["t"] * len(values)
    norm = TagNormalizer().fit(tags, values)
    out = norm.transform(tags, values)
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
