"""Validate ``python -m repro serve`` output for the ``serve-smoke`` target.

Reads the server's JSON-lines responses from stdin and asserts the shape
the protocol promises: every line parses, every request succeeded, embed
responses carry vectors, and the stats response reports the request count
and cache counters.  Exits non-zero (with a message) on any violation so
``make serve-smoke`` fails loudly in CI.

Usage::

    printf '{"op":"ping"}\\n...' | python -m repro serve --stats \\
        | python tools/check_serve_smoke.py
"""

from __future__ import annotations

import json
import sys


def check(lines: list[str]) -> list[dict]:
    """Validate response lines; returns the parsed responses."""
    responses = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            raise SystemExit(f"line {number} is not JSON: {error}")
        if not isinstance(response, dict) or "ok" not in response:
            raise SystemExit(f"line {number} lacks an 'ok' field: {line}")
        if not response["ok"]:
            raise SystemExit(f"line {number} reports failure: {line}")
        responses.append(response)
    if not responses:
        raise SystemExit("no responses on stdin")
    by_op = {r["op"]: r for r in responses}
    if "embed" in by_op:
        embeddings = by_op["embed"].get("embeddings")
        if not embeddings or not all(isinstance(row, list) and row
                                     for row in embeddings):
            raise SystemExit("embed response has no vectors")
    if "stats" in by_op:
        stats = by_op["stats"]
        if stats.get("requests", 0) < 1 or "cache" not in stats \
                or "p95" not in stats.get("latency", {}):
            raise SystemExit(f"stats response incomplete: {stats}")
    return responses


if __name__ == "__main__":
    checked = check(sys.stdin.readlines())
    print(f"serve smoke OK: {len(checked)} valid responses "
          f"({', '.join(sorted({r['op'] for r in checked}))})")
