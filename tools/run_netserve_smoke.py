"""End-to-end smoke of the socket frontend for ``make serve-net-smoke``.

Boots the real CLI (``python -m repro serve-net --port 0``) as a
subprocess, discovers the ephemeral port from its stderr banner, drives
a short mixed open-loop run with the in-process load generator, and
SIGTERMs the server.  Fails loudly (non-zero exit) when:

* the server does not come up or print its listening banner,
* any request ends in a protocol error (transport/framing breakage),
* no request succeeds (the frontend answered nothing),
* rate-limited tenants see no structured rejection (quota not enforced),
* the server does not drain and exit 0 on SIGTERM.

Run it under ``timeout`` (the Makefile target does) so a wedged server
fails the step rather than stalling the CI job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.loadgen import LoadgenConfig, run_load  # noqa: E402


def _spawn_server() -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"),
                      env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-net", "--port", "0",
         "--api-key", "smoke-limited", "--rate", "25", "--burst", "5",
         "--timeout", "2", "--retries", "0", "--close-timeout", "5",
         "--max-wait-ms", "2"],
        stderr=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
        env=env, cwd=REPO_ROOT)
    line = process.stderr.readline()
    if "netserve listening on " not in line:
        process.kill()
        raise SystemExit(f"server did not come up; stderr: {line!r}")
    host, _, port = line.rsplit(" ", 1)[-1].strip().partition(":")
    return process, host, int(port)


def main() -> int:
    process, host, port = _spawn_server()
    try:
        report = run_load(LoadgenConfig(
            host=host, port=port, api_keys=("smoke-limited",),
            mode="open", duration_s=2.0, rate_per_s=60.0, workers=4,
            mix={"embed": 1.0}, seed=0, timeout_s=5.0))
        print(report.render())
        if report.counts["protocol_error"]:
            raise SystemExit(
                f"{report.counts['protocol_error']} protocol error(s) — "
                f"the wire protocol broke")
        if report.counts["ok"] == 0:
            raise SystemExit("no request succeeded")
        if report.counts["error"]:
            raise SystemExit(
                f"{report.counts['error']} unexpected error envelope(s)")
        # 60 rps offered against a 25 rps / burst-5 tenant quota: the
        # overflow must surface as structured rate_limit rejections.
        if report.codes.get("rate_limit", 0) == 0:
            raise SystemExit("rate limit enforced no rejections at "
                             "2.4x the tenant quota")

        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            raise SystemExit("server did not exit within 30s of SIGTERM")
        if returncode != 0:
            raise SystemExit(f"server exited {returncode} after SIGTERM")
        stderr = process.stderr.read()
        if "netserve draining" not in stderr:
            raise SystemExit(f"no drain banner in stderr: {stderr!r}")
        print(f"serve-net-smoke ok: {report.counts['ok']} ok, "
              f"{report.codes.get('rate_limit', 0)} rate-limited, "
              f"clean SIGTERM drain")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass


if __name__ == "__main__":
    raise SystemExit(main())
