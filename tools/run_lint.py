#!/usr/bin/env python3
"""Run repro-lint without installing the package.

Usage (from anywhere inside the repo):

    python tools/run_lint.py --baseline tools/lint_baseline.json
    python tools/run_lint.py --format json src/repro/serving
    python tools/run_lint.py --list-rules

The linter is stdlib-only (``ast`` + ``tokenize``).  ``repro/__init__.py``
imports the numeric stack, so instead of importing the package normally we
register a bare namespace stub for ``repro`` first; ``repro.lint`` then
resolves through the stub's ``__path__`` and the lint tier never needs
numpy installed.
"""

import sys
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

if "repro" not in sys.modules:
    _stub = types.ModuleType("repro")
    _stub.__path__ = [str(REPO_ROOT / "src" / "repro")]
    sys.modules["repro"] = _stub

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
