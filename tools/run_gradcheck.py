"""Run the library-wide gradient-check sweep (``make gradcheck``).

Usage::

    python tools/run_gradcheck.py [--eps 1e-6] [--rtol 1e-4] [--atol 1e-7]
                                  [--only SUBSTR ...] [--list]

Instantiates every layer/loss in ``repro.nn``, ``repro.tensor.functional``,
``repro.numeric``, ``repro.kge``, and the task heads at small shapes and
verifies the analytic gradients against central differences.  Exits non-zero
if any case exceeds tolerance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.diagnostics import case_names, run_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="finite-difference gradient check of every module")
    parser.add_argument("--eps", type=float, default=1e-6,
                        help="central-difference step (default 1e-6)")
    parser.add_argument("--rtol", type=float, default=1e-4,
                        help="relative tolerance (default 1e-4)")
    parser.add_argument("--atol", type=float, default=1e-7,
                        help="absolute floor for tiny gradients (default 1e-7)")
    parser.add_argument("--only", nargs="*", default=None, metavar="SUBSTR",
                        help="run only cases whose name contains a substring")
    parser.add_argument("--list", action="store_true",
                        help="list case names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in case_names():
            print(name)
        return 0

    reports = run_sweep(args.only, eps=args.eps, rtol=args.rtol,
                        atol=args.atol)
    width = max(len(r.name) for r in reports)
    failures = 0
    for report in reports:
        status = "ok" if report.passed else "FAIL"
        print(f"{report.name:<{width}}  targets={len(report.results):>3}  "
              f"max_rel_err={report.max_rel_err:.3e}  {status}")
        if not report.passed:
            failures += 1
            for result in report.results:
                if not result.passed:
                    print(f"    {result.target}: rel {result.max_rel_err:.3e} "
                          f"abs {result.max_abs_err:.3e}")
    total_targets = sum(len(r.results) for r in reports)
    print(f"\n{len(reports)} cases, {total_targets} gradient targets, "
          f"{failures} failing (rtol={args.rtol:g}, eps={args.eps:g})")
    return 1 if failures else 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `--list | head`
        sys.stderr.close()
        raise SystemExit(0)
