"""Ablation — RCA aggregation architecture: GCN (the paper) vs GAT.

Swaps the paper's GCN aggregation for single-head graph attention with the
same budget and compares mean rank, answering whether the aggregation scheme
matters at this scale.
"""

import numpy as np
from conftest import save_and_print

from repro.evaluation.kfold import k_fold_splits
from repro.evaluation.ranking import rank_of
from repro.nn.optim import Adam
from repro.service import RandomProvider
from repro.tasks.rca import GatRcaModel, RcaModel, build_rca_dataset
from repro.tensor import no_grad


def _evaluate(model_cls, dataset, embeddings, seed: int, epochs: int = 6,
              **model_kwargs) -> float:
    """Mean rank over one train/test split for a given architecture."""
    splits = k_fold_splits(len(dataset.states), 5,
                           rng=np.random.default_rng(seed))
    split = splits[0]
    rng = np.random.default_rng(seed + 1)
    model = model_cls(embeddings.shape[1], rng, **model_kwargs)
    optimizer = Adam(model.parameters(), lr=5e-3)
    train_index = np.concatenate([split.train, split.valid])
    for _ in range(epochs):
        for index in rng.permutation(train_index):
            state = dataset.states[index]
            optimizer.zero_grad()
            loss = model.loss(state, embeddings)
            loss.backward()
            optimizer.step()
    ranks = []
    for index in split.test:
        state = dataset.states[index]
        with no_grad():
            scores = model(state, embeddings).data
        ranks.append(rank_of(scores, state.root_index))
    return float(np.mean(ranks))


def test_ablation_rca_architecture(pipelines, results_dir, benchmark):
    pipeline = pipelines[0]

    def run():
        dataset = build_rca_dataset(pipeline.world, pipeline.episodes)
        provider = RandomProvider(dim=pipeline.config.d_model, seed=0)
        embeddings = provider.encode_names(dataset.event_names)
        embeddings = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)
        gcn_mr = _evaluate(RcaModel, dataset, embeddings, seed=0,
                           gcn_hidden=32, gcn_out=16, mlp_hidden=8)
        gat_mr = _evaluate(GatRcaModel, dataset, embeddings, seed=0,
                           hidden=32, out=16, mlp_hidden=8)
        return {"GCN (paper)": gcn_mr, "GAT": gat_mr}

    ranks = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — RCA aggregation architecture (mean rank, lower "
            "is better)\n"
            + "\n".join(f"  {k}: {v:.3f}" for k, v in ranks.items()))
    save_and_print(results_dir, "ablation_rca_architecture.txt", text)
    assert all(np.isfinite(v) and v >= 1.0 for v in ranks.values())
