"""Fig. 10 — numeric embedding structure with and without `L_nc`.

The paper visualises ANEnc embeddings after dimension reduction and observes
that with the numerical contrastive loss, value order maps into the embedding
space.  We reproduce this on the *trained* STL models (± `L_nc`), report the
Spearman correlation between value distance and embedding distance, and dump
the 2-D PCA projections for plotting.
"""

import numpy as np
from conftest import save_and_print

from repro.experiments import format_table, run_fig10


def test_fig10_numeric_embedding_structure(pipelines, results_dir, benchmark):
    fig = benchmark.pedantic(lambda: run_fig10(pipelines[0]),
                             rounds=1, iterations=1)
    save_and_print(results_dir, "fig10_numeric.txt",
                   format_table(fig.as_table(), precision=4))

    # Dump plottable projections: value, pc1, pc2 per row.
    for name, projection in fig.projections.items():
        safe = name.replace("/", "_").replace(" ", "_")
        header = "value,pc1,pc2"
        rows = "\n".join(f"{v:.4f},{x:.5f},{y:.5f}"
                         for v, x, y in projection)
        (results_dir / f"fig10_{safe}.csv").write_text(header + "\n" + rows)

    with_nc = fig.value_distance_correlation["with L_nc"]
    without = fig.value_distance_correlation["w/o L_nc"]
    # Shape: both spaces encode value, and L_nc does not hurt the ordering
    # (the paper's claim is that it strengthens it).
    assert np.isfinite(with_nc) and np.isfinite(without)
    assert with_nc > 0.5
    assert with_nc >= without - 0.05
