"""Table VIII — fault chain tracing results across all method rows.

Reproduction target (Table VIII's shape): KTeleBERT initialisation beats
Random/MacBERT/TeleBERT, and the KE-trained variants (PMTL/IMTL) benefit the
most — in the paper this is the task with the largest knowledge-injection
gains.
"""

from conftest import save_and_print

from repro.experiments import average_tables, format_table, run_table8

KTELEBERT_ROWS = ("KTeleBERT-STL", "KTeleBERT-PMTL", "KTeleBERT-IMTL")
BASELINE_ROWS = ("Random", "MacBERT", "TeleBERT")


def test_table8_fct_results(pipelines, results_dir, benchmark):
    results = benchmark.pedantic(
        lambda: [run_table8(p) for p in pipelines], rounds=1, iterations=1)
    table = average_tables(results)
    save_and_print(results_dir, "table8_fct.txt", format_table(table))

    rows = table.rows
    best_ktelebert = max(rows[k]["MRR"] for k in KTELEBERT_ROWS)
    best_baseline = max(rows[b]["MRR"] for b in BASELINE_ROWS)

    # Shape: the knowledge-enhanced family leads the table.
    assert best_ktelebert >= best_baseline - 3.0
    assert best_ktelebert > rows["Random"]["MRR"] - 3.0
    # Sanity: ranking metrics are consistent.
    for label, row in rows.items():
        assert 0.0 <= row["Hits@1"] <= row["Hits@3"] + 1e-9, label
        assert row["Hits@3"] <= row["Hits@10"] + 1e-9, label
        assert 0.0 <= row["MRR"] <= 100.0, label
