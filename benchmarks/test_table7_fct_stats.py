"""Table VII — FCT data statistics (nodes / edges / train / valid / test)."""

from conftest import save_and_print

from repro.experiments import format_table, run_table7


def test_table7_fct_statistics(pipelines, results_dir, benchmark):
    result = benchmark.pedantic(lambda: run_table7(pipelines[0]),
                                rounds=1, iterations=1)
    save_and_print(results_dir, "table7_fct_stats.txt", format_table(result))

    stats = result.rows["FCT data"]
    # Shape: a small probabilistic alarm graph with usable held-out splits.
    assert stats["nodes"] > 10
    assert stats["train"] > stats["valid"]
    assert stats["train"] > stats["test"]
    assert stats["test"] >= 3
    # Paper ratio: train dominates (232 of 297); ours should too.
    total = stats["train"] + stats["valid"] + stats["test"]
    assert stats["train"] / total > 0.5
