"""Ablation — low-resource behaviour (the paper's motivating scenario).

Sec. I: pre-trained tele-knowledge should "aid the downstream tasks ...
especially those tasks with limited data (a.k.a. low resource tasks)".
This bench shrinks the EAP pair set and tracks the F1 advantage of
KTeleBERT-initialised features over the Random baseline.
"""

import dataclasses

import numpy as np
from conftest import save_and_print

from repro.service import KTeleBertProvider, RandomProvider
from repro.tasks.eap import EapExperiment, build_eap_dataset


def _subsample(dataset, fraction: float, rng: np.random.Generator):
    """Keep a balanced random fraction of the pair set."""
    positives = [p for p in dataset.pairs if p.label == 1]
    negatives = [p for p in dataset.pairs if p.label == 0]
    keep_pos = max(10, int(len(positives) * fraction))
    keep_neg = max(10, int(len(negatives) * fraction))
    pos_index = rng.choice(len(positives), size=keep_pos, replace=False)
    neg_index = rng.choice(len(negatives), size=keep_neg, replace=False)
    pairs = [positives[i] for i in pos_index] + \
        [negatives[i] for i in neg_index]
    return dataclasses.replace(dataset, pairs=pairs)


def test_ablation_low_resource_eap(pipelines, results_dir, benchmark):
    pipeline = pipelines[0]

    def run():
        dataset = build_eap_dataset(pipeline.world, pipeline.episodes,
                                    seed=pipeline.config.seed)
        random_provider = RandomProvider(dim=pipeline.config.d_model, seed=0)
        ktelebert_provider = KTeleBertProvider(
            pipeline.ktelebert_pmtl, pipeline.kg, mode="entity",
            label="KTeleBERT-PMTL")
        rng = np.random.default_rng(7)
        rows = {}
        for fraction in (1.0, 0.5, 0.25):
            subset = _subsample(dataset, fraction, rng)
            experiment = EapExperiment(subset, seed=0, epochs=6)
            random_f1 = experiment.run(random_provider).as_table_row()["F1-score"]
            ktelebert_f1 = experiment.run(
                ktelebert_provider).as_table_row()["F1-score"]
            rows[f"{int(fraction * 100)}% of pairs"] = {
                "Random": random_f1,
                "KTeleBERT": ktelebert_f1,
                "advantage": ktelebert_f1 - random_f1,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — low-resource EAP (F1 %, KTeleBERT vs Random)"]
    for fraction, row in rows.items():
        lines.append(f"  {fraction:<16} Random={row['Random']:5.1f}  "
                     f"KTeleBERT={row['KTeleBERT']:5.1f}  "
                     f"advantage={row['advantage']:+5.1f}")
    save_and_print(results_dir, "ablation_low_resource.txt",
                   "\n".join(lines))

    for row in rows.values():
        assert np.isfinite(row["advantage"])
    # Shape: pre-training should help at the smallest data scale.
    assert rows["25% of pairs"]["advantage"] > -5.0
