"""Ablation benches for design choices DESIGN.md calls out.

Beyond the paper's own "w/o ANEnc" rows (inside Tables IV/VI/VIII benches),
these probe the remaining design choices:

* masking rate 15% (BERT default) vs 40% (Sec. IV-C1);
* SimCSE contrastive augmentation on/off (representation collapse);
* orthogonal regularization of the ANEnc value transforms (Eq. 8);
* automatic (Kendall-Gal) loss weighting vs naive summation (Sec. IV-B4).
"""

import numpy as np
from conftest import save_and_print

from repro.models import TeleBertTrainer
from repro.nn.optim import Adam
from repro.numeric import AdaptiveNumericEncoder, NumericDecoder, NumericLossComputer
from repro.tensor import Tensor, functional as F


def _theme_margin(pipeline, trainer) -> float:
    """Mean within-theme minus cross-theme cosine of event-name embeddings."""
    events = pipeline.world.ontology.events
    vectors = trainer.encode_sentences([e.name for e in events])
    unit = vectors / np.maximum(
        np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12)
    sims = unit @ unit.T
    same, cross = [], []
    for i, a in enumerate(events):
        for j in range(i + 1, len(events)):
            (same if a.theme == events[j].theme else cross).append(sims[i, j])
    return float(np.mean(same) - np.mean(cross))


def _train_variant(pipeline, seed: int, masking_rate: float,
                   simcse_weight: float, steps: int = 120) -> TeleBertTrainer:
    trainer = TeleBertTrainer(pipeline.corpus.sentences, seed=seed,
                              d_model=32, num_layers=2, num_heads=2,
                              d_ff=64, max_len=32, batch_size=16,
                              masking_rate=masking_rate,
                              simcse_weight=simcse_weight)
    trainer.train(steps)
    return trainer


def test_ablation_masking_rate(pipelines, results_dir, benchmark):
    """40% masking (the paper's choice) vs the 15% BERT default."""
    pipeline = pipelines[0]

    def run():
        low = _train_variant(pipeline, seed=0, masking_rate=0.15,
                             simcse_weight=0.1)
        high = _train_variant(pipeline, seed=0, masking_rate=0.40,
                              simcse_weight=0.1)
        return {"15%": _theme_margin(pipeline, low),
                "40%": _theme_margin(pipeline, high)}

    margins = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — masking rate (theme-separation margin)\n"
            + "\n".join(f"  {k}: {v:.4f}" for k, v in margins.items()))
    save_and_print(results_dir, "ablation_masking_rate.txt", text)
    # Both rates must produce domain structure; the margin is the metric the
    # downstream tasks consume.
    assert all(np.isfinite(v) for v in margins.values())
    assert margins["40%"] > 0.0


def test_ablation_simcse(pipelines, results_dir, benchmark):
    """SimCSE combats representation collapse: mean pairwise cosine of
    unrelated sentences should be lower (less collapsed) with it on."""
    pipeline = pipelines[0]

    def run():
        with_simcse = _train_variant(pipeline, seed=0, masking_rate=0.15,
                                     simcse_weight=0.3)
        without = _train_variant(pipeline, seed=0, masking_rate=0.15,
                                 simcse_weight=0.0)
        rng = np.random.default_rng(0)
        sample = [pipeline.corpus.sentences[i] for i in
                  rng.choice(len(pipeline.corpus.sentences), 40,
                             replace=False)]

        def mean_cosine(trainer):
            vectors = trainer.encode_sentences(sample)
            unit = vectors / np.maximum(
                np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12)
            sims = unit @ unit.T
            upper = np.triu_indices(len(sample), k=1)
            return float(sims[upper].mean())

        return {"with SimCSE": mean_cosine(with_simcse),
                "w/o SimCSE": mean_cosine(without)}

    cosines = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — SimCSE (mean pairwise cosine; lower = less collapse)\n"
            + "\n".join(f"  {k}: {v:.4f}" for k, v in cosines.items()))
    save_and_print(results_dir, "ablation_simcse.txt", text)
    assert cosines["with SimCSE"] <= cosines["w/o SimCSE"] + 0.05


def _anenc_setup(seed: int):
    encoder = AdaptiveNumericEncoder(16, num_layers=2, num_meta=4,
                                     lora_rank=4,
                                     rng=np.random.default_rng(seed))
    decoder = NumericDecoder(16, np.random.default_rng(seed + 1))
    tag_vector = np.random.default_rng(seed + 2).normal(size=16)
    return encoder, decoder, tag_vector


def test_ablation_orthogonal_regularizer(results_dir, benchmark):
    """Eq. 8 keeps the value transforms near-orthogonal during training."""

    def run():
        out = {}
        for name, weight in (("with orth reg", 1e-2), ("w/o orth reg", 0.0)):
            encoder, decoder, tag = _anenc_setup(3)
            losses = NumericLossComputer(use_tag_classifier=False,
                                         orthogonal_weight=weight)
            optimizer = Adam(encoder.parameters() + decoder.parameters() +
                             losses.parameters(), lr=5e-3)
            rng = np.random.default_rng(9)
            for _ in range(80):
                values = rng.random(16)
                tags = Tensor(np.tile(tag, (16, 1)))
                optimizer.zero_grad()
                h = encoder(values, tags)
                result = losses(encoder, h, decoder(h), values)
                result.total.backward()
                optimizer.step()
            deviation = 0.0
            for w in encoder.value_transform_matrices():
                gram = w.data.T @ w.data
                deviation += float(
                    np.linalg.norm(np.eye(16) - gram, "fro") ** 2)
            out[name] = deviation
        return out

    deviations = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — orthogonal regularizer (Σ||I − WᵀW||²_F after "
            "training)\n"
            + "\n".join(f"  {k}: {v:.4f}" for k, v in deviations.items()))
    save_and_print(results_dir, "ablation_orthogonal.txt", text)
    assert deviations["with orth reg"] < deviations["w/o orth reg"]


def test_ablation_loss_weighting(results_dir, benchmark):
    """Kendall-Gal automatic weighting vs a naive unweighted sum."""

    def run():
        out = {}
        for name, automatic in (("auto-weighted", True), ("naive sum", False)):
            encoder, decoder, tag = _anenc_setup(5)
            losses = NumericLossComputer(use_tag_classifier=False)
            optimizer = Adam(encoder.parameters() + decoder.parameters() +
                             losses.parameters(), lr=5e-3)
            rng = np.random.default_rng(11)
            final_reg = None
            for _ in range(80):
                values = rng.random(16)
                tags = Tensor(np.tile(tag, (16, 1)))
                optimizer.zero_grad()
                h = encoder(values, tags)
                if automatic:
                    result = losses(encoder, h, decoder(h), values)
                    total = result.total
                    final_reg = result.regression
                else:
                    reg = F.mse_loss(decoder(h), values)
                    from repro.nn.losses import numeric_contrastive_loss
                    total = reg + numeric_contrastive_loss(h, values)
                    final_reg = float(reg.data)
                total.backward()
                optimizer.step()
            out[name] = final_reg
        return out

    regressions = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — loss weighting (final L_reg; lower = better "
            "value reconstruction)\n"
            + "\n".join(f"  {k}: {v:.5f}" for k, v in regressions.items()))
    save_and_print(results_dir, "ablation_weighting.txt", text)
    assert all(np.isfinite(v) and v >= 0 for v in regressions.values())
