"""Table III — RCA data statistics (graphs / features / avg nodes / edges)."""

from conftest import save_and_print

from repro.experiments import format_table, run_table3


def test_table3_rca_statistics(pipelines, results_dir, benchmark):
    result = benchmark.pedantic(lambda: run_table3(pipelines[0]),
                                rounds=1, iterations=1)
    save_and_print(results_dir, "table3_rca_stats.txt", format_table(result))

    stats = result.rows["RCA data"]
    paper = result.paper["RCA data"]
    # Shape invariants of the paper's dataset hold at our scale:
    # many graphs, feature count far above node count, dense states.
    assert stats["graphs"] > 50
    assert stats["features"] > stats["avg_nodes"]
    assert stats["avg_edges"] > stats["avg_nodes"] / 2
    # Same-order ratio of features per node as the paper (349 / 10.96 ≈ 32).
    assert stats["features"] / stats["avg_nodes"] > 1.5
    assert paper["graphs"] == 127  # reference row intact
