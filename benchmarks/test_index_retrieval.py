"""Vector-index retrieval: recall vs exact scan and probed-query QPS.

Builds :class:`repro.index.VectorIndex` over seeded synthetic entity
worlds (clustered unit vectors — the geometry real KTeleBERT entity
embeddings have) and measures, per scale:

* recall@1 / recall@10 of the probed query against the brute-force
  cosine oracle (:func:`repro.index.exact_topk`);
* sequential single-query QPS through the index, best-of-``REPS``
  interleaved with the same measurement over an exact full scan (one
  matvec + one top-k partition per query — what serving one request at a
  time without an index costs).  Interleaving the two sides and keeping
  each side's best rep cancels host noise from the recorded ratio.

Scales: 10k and 100k always; the 1M world only when
``REPRO_BENCH_FULL_SCALE`` is set (the build is minutes, not seconds) —
the registry marks the 1M gates non-binding otherwise via the recorded
``full_scale.enabled`` config flag.

Writes ``benchmarks/results/index_retrieval.txt`` (rendered view) and
``benchmarks/results/BENCH_index_retrieval.json`` (structured source of
truth, via the shared :mod:`repro.bench` emitter).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import save_and_print

from repro.bench import BENCH_INDEX_RETRIEVAL
from repro.index import VectorIndex, exact_topk, synthetic_queries, \
    synthetic_world

NUM_QUERIES = 200
K = 10
REPS = 5
SCALES = {"10k": 10_000, "100k": 100_000}
FULL_SCALE = {"1m": 1_000_000}
DIM = 32


def full_scale_enabled() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FULL_SCALE"))


def _exact_scan(vectors: np.ndarray, queries: np.ndarray, k: int) -> None:
    """Sequential exact serving loop: full matvec + top-k per query."""
    for query in queries:
        row = vectors @ query
        top = np.argpartition(-row, k - 1)[:k]
        top[np.argsort(-row[top], kind="stable")]


def _measure_scale(tmp_path, label: str, count: int) -> dict:
    names, vectors = synthetic_world(count, DIM, seed=0)
    queries = synthetic_queries(vectors, NUM_QUERIES, seed=1)
    oracle = exact_topk(vectors, names, queries, K)

    index = VectorIndex(tmp_path / f"index-{label}", fingerprint="bench")
    start = time.perf_counter()
    index.build(dict(zip(names, vectors)))
    build_s = time.perf_counter() - start

    # Warm both paths (mmap pages, BLAS thread pools) before timing.
    index.query(queries[:20], k=K)
    _exact_scan(vectors, queries[:20], K)

    index_qps = exact_qps = 0.0
    answers = None
    for _ in range(REPS):
        start = time.perf_counter()
        answers = index.query(queries, k=K)
        index_qps = max(index_qps,
                        NUM_QUERIES / (time.perf_counter() - start))
        start = time.perf_counter()
        _exact_scan(vectors, queries, K)
        exact_qps = max(exact_qps,
                        NUM_QUERIES / (time.perf_counter() - start))

    top1 = sum(1 for got, want in zip(answers, oracle)
               if got and got[0][0] == want[0][0])
    overlap = sum(
        sum(1 for name, _ in want if name in {n for n, _ in got})
        for got, want in zip(answers, oracle))
    return {
        "count": count,
        "build_s": build_s,
        "recall_at_1": top1 / NUM_QUERIES,
        "recall_at_10": overlap / (NUM_QUERIES * K),
        "index_qps": index_qps,
        "exact_qps": exact_qps,
        "speedup_x": index_qps / exact_qps,
    }


def test_index_retrieval(results_dir, record_bench, tmp_path):
    scales = dict(SCALES)
    if full_scale_enabled():
        scales.update(FULL_SCALE)
    rows = {label: _measure_scale(tmp_path, label, count)
            for label, count in scales.items()}

    lines = [f"Index retrieval — dim {DIM}, {NUM_QUERIES} queries, "
             f"k={K}, best of {REPS} interleaved reps",
             f"{'scale':<6} {'recall@1':>9} {'recall@10':>10} "
             f"{'index q/s':>10} {'exact q/s':>10} {'speedup':>8} "
             f"{'build s':>8}"]
    for label, row in rows.items():
        lines.append(
            f"{label:<6} {row['recall_at_1']:>9.3f} "
            f"{row['recall_at_10']:>10.3f} {row['index_qps']:>10,.0f} "
            f"{row['exact_qps']:>10,.0f} {row['speedup_x']:>7.1f}x "
            f"{row['build_s']:>8.1f}")
    save_and_print(results_dir, "index_retrieval.txt", "\n".join(lines))

    metrics = {
        "recall_at_1_10k": rows["10k"]["recall_at_1"],
        "recall_at_10_10k": rows["10k"]["recall_at_10"],
        "recall_at_1_100k": rows["100k"]["recall_at_1"],
        "recall_at_10_100k": rows["100k"]["recall_at_10"],
        "index_qps_10k": rows["10k"]["index_qps"],
        "index_qps_100k": rows["100k"]["index_qps"],
        "exact_qps_10k": rows["10k"]["exact_qps"],
        "exact_qps_100k": rows["100k"]["exact_qps"],
        "speedup_10k_x": rows["10k"]["speedup_x"],
        "speedup_100k_x": rows["100k"]["speedup_x"],
        "build_100k_s": rows["100k"]["build_s"],
    }
    if "1m" in rows:
        metrics.update({
            "recall_at_10_1m": rows["1m"]["recall_at_10"],
            "index_qps_1m": rows["1m"]["index_qps"],
            "exact_qps_1m": rows["1m"]["exact_qps"],
            "speedup_1m_x": rows["1m"]["speedup_x"],
        })
    record_bench(BENCH_INDEX_RETRIEVAL, metrics, config={
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "reps": REPS,
        "scales": {label: row["count"] for label, row in rows.items()},
        "full_scale": {"enabled": full_scale_enabled()},
    })

    # Default nprobe must answer almost exactly at both standing scales,
    # and the probed scan must beat serving exact scans outright at 100k.
    for label in ("10k", "100k"):
        assert rows[label]["recall_at_10"] >= 0.95, rows[label]
    assert rows["100k"]["speedup_x"] > 3.0, rows["100k"]
