"""Table V — EAP data statistics (events / pairs / MDAF packages / NEs)."""

from conftest import save_and_print

from repro.experiments import format_table, run_table5


def test_table5_eap_statistics(pipelines, results_dir, benchmark):
    result = benchmark.pedantic(lambda: run_table5(pipelines[0]),
                                rounds=1, iterations=1)
    save_and_print(results_dir, "table5_eap_stats.txt", format_table(result))

    stats = result.rows["EAP data"]
    # Balanced positives/negatives, as in the paper (2141 / 2141).
    assert stats["event_pairs_negative"] >= \
        stats["event_pairs_positive"] * 0.8
    assert stats["event_pairs_negative"] <= stats["event_pairs_positive"]
    # Far more pairs than events (pairs are per-occurrence fault patterns).
    assert stats["event_pairs_positive"] > stats["events"]
    assert stats["mdaf_packages"] > 0
    assert stats["network_elements"] > 2
