"""Training hot-path throughput: mask_batch, fused ops, full stage-2 step.

Six measurements, written to
``benchmarks/results/train_step_throughput.txt`` (human-readable) and
``benchmarks/results/BENCH_train_step.json`` (machine-readable, emitted
through the shared :mod:`repro.bench` schema with per-metric gating
declared in :mod:`repro.bench.registry`):

* ``mask_batch`` on a 64×128 batch over a 5k-token vocabulary, new
  vectorised implementation vs. an in-file reimplementation of the pre-fix
  per-position Python loop (pool rebuilt on every call).  The fix must be at
  least 5× faster — asserted, not eyeballed.
* the fused embedding gather (``functional.fused_embedding``) vs. an
  in-file reimplementation of the former five-node keep-mask composition,
  forward + backward.
* the fused attention-weight softmax (``functional.attention_weights``)
  vs. the former matmul/scale/bias/softmax composition, forward + backward.
* one full stage-2 KTeleBERT train step (MLM + L_num + KE with gradient
  clipping) on the miniature pipeline, reported as tokens/sec so later
  optimisation passes have a recorded baseline (24.34 ms/step before the
  fused ops landed).
* a regression guard proving the per-step invariants stay hoisted out of
  the hot loop: ``Stage2Data.vocabulary`` and ``Vocab.special_ids`` must
  not be recomputed per step.
* serial vs 4-worker data-parallel step throughput through
  :class:`~repro.training.runtime.TrainingRuntime`; the ≥2x speedup bar is
  asserted whenever the host has at least 4 CPUs (the measurement is
  recorded either way, with an explicit note when the CPU count makes the
  bar non-binding).

Gradient correctness of everything measured here is gated separately by
``make gradcheck``; this file only measures speed.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
from conftest import save_and_print

from repro.bench import BENCH_TRAIN_STEP
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.tokenization.vocab import Vocab
from repro.training.masking import DynamicMasker

VOCAB_SIZE = 5000
BATCH, SEQ = 64, 128
MIN_SPEEDUP = 5.0


def _legacy_mask_batch(masker: DynamicMasker, ids: np.ndarray,
                       attention_mask: np.ndarray):
    """The pre-fix hot path: O(V) pool rebuild per call + per-position RNG."""
    ids = np.asarray(ids)
    attention_mask = np.asarray(attention_mask)
    out_ids = ids.copy()
    masked = np.zeros(ids.shape, dtype=bool)
    special = masker._special_ids
    replacement_pool = np.array(
        [i for i in range(len(masker.vocab)) if i not in special],
        dtype=np.int64)

    for row in range(ids.shape[0]):
        length = int(attention_mask[row].sum())
        valid = [i for i in range(length)
                 if int(ids[row, i]) not in special]
        units = [[i] for i in valid]
        if not units:
            continue
        total_positions = sum(len(u) for u in units)
        target = max(1, int(round(total_positions * masker.masking_rate)))
        order = masker.rng.permutation(len(units))
        chosen: list[int] = []
        for unit_index in order:
            if len(chosen) >= target:
                break
            chosen.extend(units[unit_index])
        for position in chosen:
            masked[row, position] = True
            roll = masker.rng.random()
            if roll < masker.mask_token_prob:
                out_ids[row, position] = masker.vocab.mask_id
            elif roll < masker.mask_token_prob + masker.random_token_prob:
                out_ids[row, position] = int(replacement_pool[
                    masker.rng.integers(len(replacement_pool))])
    return out_ids, masked


def _masking_inputs():
    rng = np.random.default_rng(0)
    vocab = Vocab([f"tok{i}" for i in range(VOCAB_SIZE - 5)])
    ids = rng.integers(5, len(vocab), size=(BATCH, SEQ))
    attention_mask = np.ones_like(ids)
    attention_mask[:, 100:] = 0  # realistic padding tail
    return vocab, ids, attention_mask


def _best_of(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_mask_batch_speedup(results_dir, record_bench):
    vocab, ids, attention_mask = _masking_inputs()
    masker = DynamicMasker(vocab, np.random.default_rng(1))

    legacy_s = _best_of(lambda: _legacy_mask_batch(masker, ids,
                                                   attention_mask))
    masker.mask_batch(ids, attention_mask)  # warm the pool cache
    fixed_s = _best_of(lambda: masker.mask_batch(ids, attention_mask))
    speedup = legacy_s / fixed_s

    lines = [
        "mask_batch hot path "
        f"({BATCH}x{SEQ} batch, vocab {VOCAB_SIZE}, rate "
        f"{masker.masking_rate:.2f})",
        f"  legacy (pre-fix loop): {legacy_s * 1e3:9.2f} ms/batch",
        f"  vectorised (current):  {fixed_s * 1e3:9.2f} ms/batch",
        f"  speedup:               {speedup:9.1f}x  (required >= "
        f"{MIN_SPEEDUP:.0f}x)",
    ]
    save_and_print(results_dir, "train_step_throughput.txt",
                   "\n".join(lines))
    record_bench(BENCH_TRAIN_STEP, {
        "mask_batch_legacy_ms": legacy_s * 1e3,
        "mask_batch_fixed_ms": fixed_s * 1e3,
        "mask_batch_speedup_x": speedup,
    }, config={"mask_batch": {"batch": BATCH, "seq": SEQ,
                              "vocab": VOCAB_SIZE}})
    assert speedup >= MIN_SPEEDUP, (
        f"mask_batch speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x "
        f"acceptance bar (legacy {legacy_s * 1e3:.2f} ms, "
        f"fixed {fixed_s * 1e3:.2f} ms)")


def _fwd_bwd_best_of(fn, params, iters: int = 10, repeats: int = 3) -> float:
    """Best per-iteration wall time of forward + backward over ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            for param in params:
                param.zero_grad()
            fn().sum().backward()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def test_fused_embedding_speedup(results_dir, record_bench):
    """Fused gather+scatter vs. the former five-node keep-mask composition."""
    from repro.nn.layers import Embedding

    rng = np.random.default_rng(3)
    d_model, batch, seq, n_overrides = 64, 16, 32, 40
    token_embedding = Embedding(VOCAB_SIZE, d_model, rng)
    position_embedding = Embedding(seq, d_model, rng)
    ids = rng.integers(0, VOCAB_SIZE, size=(batch, seq))
    positions = np.stack([rng.integers(0, batch, n_overrides),
                          rng.integers(0, seq, n_overrides)], axis=1)
    vectors = Tensor(rng.normal(size=(n_overrides, d_model)),
                     requires_grad=True)
    params = [token_embedding.weight, position_embedding.weight, vectors]

    def legacy():
        # The pre-fused embed() body: gather, keep-mask, scatter via a
        # gather index, mask-multiplied blend, tiled position add.
        token = token_embedding(ids)
        keep = np.ones((batch, seq, 1))
        keep[positions[:, 0], positions[:, 1], 0] = 0.0
        gather = np.zeros((batch, seq), dtype=np.int64)
        gather[positions[:, 0], positions[:, 1]] = np.arange(len(positions))
        scattered = vectors.take_rows(gather) * Tensor(1.0 - keep)
        token = token * Tensor(keep) + scattered
        pos_ids = np.tile(np.arange(seq), (batch, 1))
        return token + position_embedding(pos_ids)

    def fused():
        return F.fused_embedding(token_embedding.weight,
                                 position_embedding.weight, ids,
                                 overrides=(positions, vectors))

    np.testing.assert_allclose(legacy().data, fused().data,
                               rtol=1e-12, atol=1e-12)
    legacy_s = _fwd_bwd_best_of(legacy, params)
    fused_s = _fwd_bwd_best_of(fused, params)
    speedup = legacy_s / fused_s

    lines = [
        "",
        f"fused embedding gather ({batch}x{seq} ids, vocab {VOCAB_SIZE}, "
        f"d={d_model}, {n_overrides} overrides, fwd+bwd)",
        f"  legacy (5-node keep-mask): {legacy_s * 1e3:9.3f} ms",
        f"  fused (single node):       {fused_s * 1e3:9.3f} ms",
        f"  speedup:                   {speedup:9.1f}x",
    ]
    _append_result(results_dir, "\n".join(lines))
    record_bench(BENCH_TRAIN_STEP, {
        "fused_embedding_legacy_ms": legacy_s * 1e3,
        "fused_embedding_fused_ms": fused_s * 1e3,
        "fused_embedding_speedup_x": speedup,
    })
    assert speedup >= 1.0, (
        f"fused_embedding is slower than the composition it replaced "
        f"({speedup:.2f}x)")


def test_attention_weights_speedup(results_dir, record_bench):
    """Fused attention softmax vs. the former seven-node composition."""
    rng = np.random.default_rng(4)
    batch, heads, seq, head_dim = 8, 4, 64, 16
    scale = 1.0 / np.sqrt(head_dim)
    q = Tensor(rng.normal(size=(batch, heads, seq, head_dim)),
               requires_grad=True)
    k = Tensor(rng.normal(size=(batch, heads, seq, head_dim)),
               requires_grad=True)
    mask = np.ones((batch, seq))
    mask[:, 48:] = 0
    mask_bias = F.attention_scores_mask(mask)
    workspace: dict = {}

    def legacy():
        # The pre-fused forward: matmul, scale, bias add, then the
        # four-node stabilised softmax — every (B, H, T, T) intermediate
        # captured by the graph.
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        scores = scores + Tensor(mask_bias)
        return F.softmax(scores, axis=-1)

    def fused():
        return F.attention_weights(q, k, scale, mask_bias=mask_bias,
                                   workspace=workspace)

    np.testing.assert_allclose(legacy().data, fused().data,
                               rtol=1e-12, atol=1e-12)
    legacy_s = _fwd_bwd_best_of(legacy, [q, k])
    fused_s = _fwd_bwd_best_of(fused, [q, k])
    speedup = legacy_s / fused_s

    lines = [
        "",
        f"fused attention weights (B={batch}, H={heads}, T={seq}, "
        f"Dh={head_dim}, fwd+bwd)",
        f"  legacy (7-node softmax):   {legacy_s * 1e3:9.3f} ms",
        f"  fused (single node):       {fused_s * 1e3:9.3f} ms",
        f"  speedup:                   {speedup:9.1f}x",
    ]
    _append_result(results_dir, "\n".join(lines))
    record_bench(BENCH_TRAIN_STEP, {
        "attention_weights_legacy_ms": legacy_s * 1e3,
        "attention_weights_fused_ms": fused_s * 1e3,
        "attention_weights_speedup_x": speedup,
    })
    assert speedup >= 1.0, (
        f"attention_weights is slower than the composition it replaced "
        f"({speedup:.2f}x)")


def _build_retrainer(total_steps: int = 8, batch_size: int = 8):
    """The miniature stage-2 pipeline shared by the step benchmarks."""
    from repro.corpus import build_tele_corpus
    from repro.kg import build_tele_kg
    from repro.models import KTeleBert, KTeleBertConfig, TeleBertTrainer
    from repro.training import build_strategy
    from repro.training.retrainer import KTeleBertRetrainer
    from repro.training.stage2 import build_stage2_data
    from repro.world import TelecomWorld

    world = TelecomWorld.generate(seed=7, alarms_per_theme=2,
                                  kpis_per_theme=2, topology_nodes=8)
    corpus = build_tele_corpus(world, seed=7)
    kg = build_tele_kg(world)
    episodes = world.simulate_episodes(4)
    trainer = TeleBertTrainer(corpus.sentences, seed=7, d_model=16,
                              num_layers=1, num_heads=2, d_ff=32,
                              max_len=24, batch_size=8)
    trainer.train(steps=2)
    data = build_stage2_data(corpus, episodes, kg, seed=7, ke_negatives=3)
    model = KTeleBert.from_telebert(
        trainer,
        KTeleBertConfig(anenc_layers=1, anenc_meta=2, lora_rank=2,
                        ke_negatives=3),
        tag_names=data.tag_names, normalizer=data.normalizer,
        extra_vocabulary=data.vocabulary(), seed=7)
    strategy = build_strategy("pmtl", total_steps=total_steps)
    return KTeleBertRetrainer(model, data, strategy, seed=7,
                              batch_size=batch_size)


def _append_result(results_dir, text: str) -> None:
    path = results_dir / "train_step_throughput.txt"
    existing = path.read_text() if path.exists() else ""
    path.write_text(existing.rstrip("\n") + text + "\n")
    print(text)


def test_stage2_train_step_tokens_per_sec(results_dir, record_bench):
    batch_size = 8
    retrainer = _build_retrainer(batch_size=batch_size)
    model, data = retrainer.model, retrainer.data

    retrainer.train_step()  # warm-up: caches, first-touch allocations
    steps = 5
    start = time.perf_counter()
    for _ in range(steps):
        retrainer.train_step()
    elapsed = time.perf_counter() - start

    from repro.tokenization.tokenizer import basic_tokenize
    avg_tokens = float(np.mean(
        [len(basic_tokenize(r.text)) + 2  # +2 for [CLS]/[SEP]
         for r in data.mask_rows]))
    tokens_per_step = avg_tokens * batch_size
    tokens_per_sec = tokens_per_step * steps / elapsed

    lines = [
        "",
        f"stage-2 train step (MLM + L_num + KE, d_model="
        f"{model.bert_config.d_model}, batch {batch_size})",
        f"  step latency:   {elapsed / steps * 1e3:9.2f} ms "
        f"(24.34 ms before the fused embedding/attention ops)",
        f"  throughput:     {tokens_per_sec:9.0f} tokens/sec "
        f"(~{avg_tokens:.1f} tokens/row)",
    ]
    _append_result(results_dir, "\n".join(lines))
    record_bench(BENCH_TRAIN_STEP, {
        "stage2_step_ms": elapsed / steps * 1e3,
        "stage2_tokens_per_sec": tokens_per_sec,
    }, config={"stage2": {"d_model": model.bert_config.d_model,
                          "batch_size": batch_size}})
    assert tokens_per_sec > 0
    assert all(np.isfinite(v) for v in retrainer.log.total)


def test_per_step_invariants_stay_hoisted():
    """Regression guard: the train loop must not redo per-run setup work.

    Pre-fix, every step rebuilt the extra-vocabulary list from
    ``Stage2Data`` and the special-token id set from the vocabulary.  Both
    are now computed once (model construction / first batch) and cached, so
    across a window of steps the loop must make zero ``vocabulary()`` calls
    and zero special-id set rebuilds.
    """
    from repro.training.stage2 import Stage2Data

    retrainer = _build_retrainer()
    retrainer.train_step()  # warm every cache the hot loop relies on

    calls = {"vocabulary": 0, "special_ids": 0}
    original_vocabulary = Stage2Data.vocabulary
    original_special_ids = Vocab.special_ids

    def counting_vocabulary(self):
        calls["vocabulary"] += 1
        return original_vocabulary(self)

    def counting_special_ids(self):
        calls["special_ids"] += 1
        return original_special_ids(self)

    Stage2Data.vocabulary = counting_vocabulary
    Vocab.special_ids = counting_special_ids
    try:
        for _ in range(4):
            retrainer.train_step()
    finally:
        Stage2Data.vocabulary = original_vocabulary
        Vocab.special_ids = original_special_ids

    assert calls["vocabulary"] == 0, (
        f"train_step rebuilt the Stage2Data vocabulary "
        f"{calls['vocabulary']} times — the hoist regressed")
    assert calls["special_ids"] == 0, (
        f"train_step rebuilt the special-id set {calls['special_ids']} "
        f"times — the masker cache regressed")


def test_data_parallel_step_speedup(results_dir, record_bench, tmp_path):
    """Serial vs 4-worker data-parallel train-step throughput.

    The ≥2x acceptance bar only binds on hosts with at least 4 CPUs — on
    smaller machines the processes time-share one core and the measurement
    is recorded without the assertion.
    """
    from repro.training.runtime import RuntimeConfig, TrainingRuntime

    workers = 4
    steps = 4
    cpus = os.cpu_count() or 1
    has_fork = "fork" in multiprocessing.get_all_start_methods()

    def timed_run(num_workers, run_dir):
        retrainer = _build_retrainer(total_steps=steps + 2)
        runtime = TrainingRuntime(retrainer, RuntimeConfig(
            run_dir=run_dir, workers=num_workers,
            checkpoint_every_steps=0, handle_signals=False))
        runtime.run(max_steps=1)  # warm-up (builds the pool, first-touch)
        start = time.perf_counter()
        runtime.run(max_steps=steps)
        elapsed = time.perf_counter() - start
        kinds = [e["kind"] for e in runtime.journal.events()]
        return elapsed, retrainer.log, kinds

    serial_s, serial_log, _ = timed_run(1, tmp_path / "serial")
    if not has_fork:
        _append_result(results_dir, "\ndata-parallel step: skipped "
                                    "(fork start method unavailable)")
        return
    parallel_s, parallel_log, kinds = timed_run(workers, tmp_path / "par")

    assert "fallback_serial" not in kinds, (
        "the worker pool degraded to serial; the parallel path was not "
        "actually measured")
    assert all(np.isfinite(v) for v in serial_log.total)
    assert all(np.isfinite(v) for v in parallel_log.total)

    speedup = serial_s / parallel_s
    lines = [
        "",
        f"data-parallel stage-2 step ({workers} fork workers, "
        f"{steps} timed steps, {cpus} CPUs visible)",
        f"  serial:   {serial_s / steps * 1e3:9.2f} ms/step",
        f"  parallel: {parallel_s / steps * 1e3:9.2f} ms/step",
        f"  speedup:  {speedup:9.2f}x  "
        f"(>= 2x required when cpus >= {workers})",
    ]
    if cpus < workers:
        lines.append(
            f"  NOTE: only {cpus} CPU(s) visible — the {workers} workers "
            f"time-share cores, so the >=2x bar is not binding on this "
            f"host; the measurement is recorded for reference only.")
    _append_result(results_dir, "\n".join(lines))
    record_bench(BENCH_TRAIN_STEP, {
        "data_parallel_serial_step_ms": serial_s / steps * 1e3,
        "data_parallel_parallel_step_ms": parallel_s / steps * 1e3,
        "data_parallel_speedup_x": speedup,
    }, config={"data_parallel": {"workers": workers, "timed_steps": steps,
                                 "cpus_visible": cpus,
                                 "speedup_bar_binding": cpus >= workers}})
    if cpus >= workers:
        assert speedup >= 2.0, (
            f"data-parallel speedup {speedup:.2f}x below the 2x bar with "
            f"{cpus} CPUs available")
