"""Ablation — the future-work data sources (signaling flow + configuration).

The paper leaves signaling flow and configuration data as future work
(Sec. IV-B); this repository implements them.  The ablation re-trains the
STL variant with and without those sources in the masking stream and
compares the theme-separation margin of the resulting event embeddings —
the signal the downstream tasks consume.
"""

import numpy as np
from conftest import save_and_print

from repro.analysis import theme_separation
from repro.experiments import ExperimentPipeline, PipelineConfig
from repro.service import KTeleBertProvider


def _margin(pipeline) -> float:
    events = pipeline.world.ontology.events
    provider = KTeleBertProvider(pipeline.ktelebert_stl, pipeline.kg,
                                 mode="entity")
    vectors = provider.encode_names([e.name for e in events])
    return theme_separation(vectors, [e.theme for e in events])


def test_ablation_future_data_sources(results_dir, benchmark):
    def run():
        base = dict(seed=0, num_episodes=60, stage1_steps=150,
                    stage2_steps=120, generic_sentences=200)
        with_sources = ExperimentPipeline(PipelineConfig(
            include_future_sources=True, **base))
        without = ExperimentPipeline(PipelineConfig(
            include_future_sources=False, **base))
        rows = {
            "with [SIG]/[CFG] sources": _margin(with_sources),
            "paper scope only": _margin(without),
        }
        rows["extra stage-2 rows"] = float(
            len(with_sources.stage2_data.log_rows) -
            len(without.stage2_data.log_rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — future-work data sources (theme-separation margin "
            "of STL event embeddings)\n"
            + "\n".join(f"  {k}: {v:.4f}" for k, v in rows.items()))
    save_and_print(results_dir, "ablation_future_sources.txt", text)
    assert rows["extra stage-2 rows"] > 0
    assert np.isfinite(rows["with [SIG]/[CFG] sources"])
