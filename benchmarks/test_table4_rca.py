"""Table IV — root-cause analysis results across all method rows.

Reproduction target (comparative shape, not absolute numbers):
pre-trained embeddings beat Random, tele-domain beats generic, and the
knowledge-enhanced KTeleBERT family holds the best rows.
"""

from conftest import save_and_print

from repro.experiments import average_tables, format_table, run_table4

KTELEBERT_ROWS = ("KTeleBERT-STL", "KTeleBERT-PMTL", "KTeleBERT-IMTL")


def test_table4_rca_results(pipelines, results_dir, benchmark):
    results = benchmark.pedantic(
        lambda: [run_table4(p) for p in pipelines], rounds=1, iterations=1)
    table = average_tables(results)
    save_and_print(results_dir, "table4_rca.txt", format_table(table))

    rows = table.rows
    best_ktelebert_mr = min(rows[k]["MR"] for k in KTELEBERT_ROWS)
    best_ktelebert_h1 = max(rows[k]["Hits@1"] for k in KTELEBERT_ROWS)

    # Shape: the knowledge-enhanced family beats the Random baseline.
    assert best_ktelebert_mr <= rows["Random"]["MR"]
    assert best_ktelebert_h1 >= rows["Random"]["Hits@1"] - 1.0
    # Shape: it also beats the generic-domain PLM.
    assert best_ktelebert_mr <= rows["MacBERT"]["MR"]
    # Sanity: every method produces valid metrics.
    for label, row in rows.items():
        assert row["MR"] >= 1.0, label
        assert 0.0 <= row["Hits@1"] <= row["Hits@3"] + 1e-9, label
        assert row["Hits@3"] <= row["Hits@5"] + 1e-9, label
