"""Serving-layer throughput: batching on/off, persistent cache cold/warm.

Measures names/sec through four configurations of the serving stack over a
synthetic encoder with realistic per-call overhead (a fixed setup cost per
forward pass — the regime micro-batching exists for):

* ``unbatched``        — one provider call per single-name request;
* ``micro-batched``    — the same requests coalesced by ``MicroBatcher``;
* ``persistent cold``  — first run against an empty on-disk store;
* ``persistent warm``  — a fresh provider instance over the populated
  store (zero forward passes expected).

Writes ``benchmarks/results/serving_throughput.txt`` (the rendered view)
and ``benchmarks/results/BENCH_serving_throughput.json`` (the structured
source of truth, via the shared :mod:`repro.bench` emitter).
"""

from __future__ import annotations

import threading
import time

import numpy as np
from conftest import save_and_print

from repro.bench import BENCH_SERVING_THROUGHPUT
from repro.service import RandomProvider
from repro.serving import EmbeddingStore, MicroBatcher, PersistentProvider

NUM_NAMES = 96
CALL_OVERHEAD_S = 0.002          # fixed per-forward-pass cost
PER_NAME_S = 0.00005             # marginal per-name cost


class OverheadProvider(RandomProvider):
    """Encoder stand-in whose cost is dominated by per-call overhead."""

    def __init__(self, dim=32, seed=0):
        super().__init__(dim=dim, seed=seed)
        self.calls = 0

    def encode_names(self, names):
        self.calls += 1
        time.sleep(CALL_OVERHEAD_S + PER_NAME_S * len(names))
        return super().encode_names(names)


def _names() -> list[str]:
    return [f"alarm {i} link failure" for i in range(NUM_NAMES)]


def _run_unbatched() -> tuple[float, int]:
    provider = OverheadProvider()
    start = time.perf_counter()
    for name in _names():
        provider.encode_names([name])
    return NUM_NAMES / (time.perf_counter() - start), provider.calls


def _run_batched() -> tuple[float, int]:
    provider = OverheadProvider()
    results: list[np.ndarray] = []
    lock = threading.Lock()
    with MicroBatcher(provider, max_batch_size=32,
                      max_wait_ms=10) as batcher:
        start = time.perf_counter()

        def worker(chunk: list[str]) -> None:
            for name in chunk:
                vector = batcher.encode([name])
                with lock:
                    results.append(vector)

        chunks = [_names()[i::8] for i in range(8)]
        threads = [threading.Thread(target=worker, args=(c,))
                   for c in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    assert len(results) == NUM_NAMES
    return NUM_NAMES / elapsed, provider.calls


def _run_persistent(store_dir, fingerprint="bench") -> tuple[float, int]:
    provider = OverheadProvider()
    stacked = PersistentProvider(
        provider, EmbeddingStore(store_dir, fingerprint=fingerprint))
    start = time.perf_counter()
    stacked.encode_names(_names())
    return NUM_NAMES / (time.perf_counter() - start), provider.calls


def test_serving_throughput(results_dir, record_bench, benchmark,
                            tmp_path):
    def measure():
        unbatched, unbatched_calls = _run_unbatched()
        batched, batched_calls = _run_batched()
        cold, cold_calls = _run_persistent(tmp_path / "store")
        warm, warm_calls = _run_persistent(tmp_path / "store")
        return {
            "unbatched": (unbatched, unbatched_calls),
            "micro-batched": (batched, batched_calls),
            "persistent cold": (cold, cold_calls),
            "persistent warm": (warm, warm_calls),
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"Serving throughput — {NUM_NAMES} names, "
             f"{CALL_OVERHEAD_S * 1000:.1f}ms call overhead",
             f"{'configuration':<18} {'names/sec':>12} {'fwd passes':>12}"]
    for label, (rate, calls) in rows.items():
        lines.append(f"{label:<18} {rate:>12.1f} {calls:>12d}")
    save_and_print(results_dir, "serving_throughput.txt", "\n".join(lines))

    record_bench(BENCH_SERVING_THROUGHPUT, {
        "unbatched_names_per_sec": rows["unbatched"][0],
        "batched_names_per_sec": rows["micro-batched"][0],
        "batched_speedup_x": rows["micro-batched"][0] /
        rows["unbatched"][0],
        "cold_names_per_sec": rows["persistent cold"][0],
        "warm_names_per_sec": rows["persistent warm"][0],
        "unbatched_fwd_passes": rows["unbatched"][1],
        "batched_fwd_passes": rows["micro-batched"][1],
        "cold_fwd_passes": rows["persistent cold"][1],
        "warm_fwd_passes": rows["persistent warm"][1],
    }, config={"num_names": NUM_NAMES,
               "call_overhead_s": CALL_OVERHEAD_S,
               "per_name_s": PER_NAME_S})

    # Batching amortises the per-call overhead across concurrent requests.
    assert rows["micro-batched"][1] < rows["unbatched"][1]
    assert rows["micro-batched"][0] > rows["unbatched"][0]
    # A warm persistent store performs zero forward passes.
    assert rows["persistent warm"][1] == 0
    assert rows["persistent cold"][1] >= 1
