"""Table VI — event association prediction results across all method rows.

Reproduction target (Table VI's shape): domain pre-training beats the
word-embedding and generic-PLM baselines on F1, and the KTeleBERT family
beats plain TeleBERT.
"""

from conftest import save_and_print

from repro.experiments import average_tables, format_table, run_table6

KTELEBERT_ROWS = ("KTeleBERT-STL", "KTeleBERT-PMTL", "KTeleBERT-IMTL")


def test_table6_eap_results(pipelines, results_dir, benchmark):
    results = benchmark.pedantic(
        lambda: [run_table6(p) for p in pipelines], rounds=1, iterations=1)
    table = average_tables(results)
    save_and_print(results_dir, "table6_eap.txt", format_table(table))

    rows = table.rows
    best_ktelebert_f1 = max(rows[k]["F1-score"] for k in KTELEBERT_ROWS)

    # Shape: KTeleBERT beats both baselines and plain TeleBERT on F1.
    assert best_ktelebert_f1 > rows["Word Embeddings"]["F1-score"]
    assert best_ktelebert_f1 > rows["MacBERT"]["F1-score"]
    assert best_ktelebert_f1 >= rows["TeleBERT"]["F1-score"] - 1.0
    # Shape: knowledge injection (PMTL/IMTL) helps over mask-only STL.
    ke_best = max(rows["KTeleBERT-PMTL"]["F1-score"],
                  rows["KTeleBERT-IMTL"]["F1-score"])
    assert ke_best >= rows["KTeleBERT-STL"]["F1-score"] - 2.0
    # Sanity: all metrics are valid percentages.
    for label, row in rows.items():
        for column, value in row.items():
            assert 0.0 <= value <= 100.0, (label, column)
