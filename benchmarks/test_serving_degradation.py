"""Serving-layer degradation under encoder faults: latency stays bounded.

Drives the full serving façade (deadline propagation, flush watchdog,
cancellable pool, retry budget, fallback) through three encoder health
regimes and measures per-request latency plus thread growth:

* ``healthy``      — primary answers promptly; the baseline;
* ``wedged``       — primary hangs forever; every request must be answered
  by the fallback within the configured retry budget, and hung flush
  threads must stay bounded instead of accumulating one per request;
* ``flaky``        — primary hangs periodically; retries recover it.

Writes ``benchmarks/results/serving_degradation.txt`` (the rendered
view) and ``benchmarks/results/BENCH_serving_degradation.json`` (the
structured source of truth, via the shared :mod:`repro.bench` emitter).
"""

from __future__ import annotations

import threading
import time

from conftest import save_and_print

from repro.bench import BENCH_SERVING_DEGRADATION
from repro.service import RandomProvider
from repro.serving import FaultAnalysisService, ServiceConfig

NUM_REQUESTS = 24
#: headroom over ServiceConfig.total_budget_s() for scheduler jitter.
SLACK_S = 0.75


class WedgedProvider(RandomProvider):
    """Every encode blocks until :meth:`release` — a dead encoder."""

    label = "Wedged"

    def __init__(self, dim=16):
        super().__init__(dim=dim, seed=0)
        self._release = threading.Event()

    def release(self):
        self._release.set()

    def encode_names(self, names):
        self._release.wait()
        return super().encode_names(names)


class PeriodicallyHungProvider(RandomProvider):
    """Stalls every ``period``-th call well past the flush watchdog — a
    flaky encoder whose spikes retries recover (and whose stuck threads
    eventually come back, so the circuit breaker never has to open)."""

    label = "Flaky"

    def __init__(self, dim=16, period=3, stall_s=0.25):
        super().__init__(dim=dim, seed=0)
        self.period = period
        self.stall_s = stall_s
        self._lock = threading.Lock()
        self.calls = 0

    def encode_names(self, names):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call % self.period == 0:
            time.sleep(self.stall_s)
        return super().encode_names(names)


def _config() -> ServiceConfig:
    return ServiceConfig(max_batch_size=8, max_wait_ms=2.0,
                         timeout_s=0.05, max_retries=1, backoff_s=0.01,
                         flush_timeout_s=0.05, max_workers=4,
                         max_hung_flushes=4, close_timeout_s=2.0)


def _drive(provider, fallback) -> dict:
    """Issue NUM_REQUESTS sequential embeds; report latency + thread use."""
    config = _config()
    threads_before = threading.active_count()
    latencies: list[float] = []
    with FaultAnalysisService(provider, fallback=fallback,
                              config=config) as service:
        for i in range(NUM_REQUESTS):
            start = time.perf_counter()
            out = service.embed([f"alarm {i} degraded link"])
            latencies.append(time.perf_counter() - start)
            assert out.shape == (1, provider.dim)
        threads_during = threading.active_count()
        fallbacks = service.metrics.counter("serving.fallbacks").value
        retries = service.metrics.counter("serving.retries").value
    if hasattr(provider, "release"):
        provider.release()           # let wedged daemon threads drain
    latencies.sort()
    return {
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p95_ms": latencies[int(len(latencies) * 0.95)] * 1000,
        "max_ms": latencies[-1] * 1000,
        "thread_growth": threads_during - threads_before,
        "fallbacks": fallbacks,
        "retries": retries,
        "budget_ms": config.total_budget_s() * 1000,
    }


def test_serving_degradation(results_dir, record_bench, benchmark):
    def measure():
        return {
            "healthy": _drive(RandomProvider(dim=16, seed=0), None),
            "wedged": _drive(WedgedProvider(dim=16),
                             RandomProvider(dim=16, seed=1)),
            "flaky": _drive(PeriodicallyHungProvider(dim=16, period=3),
                            RandomProvider(dim=16, seed=1)),
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"Serving degradation — {NUM_REQUESTS} sequential embeds per "
             f"scenario, retry budget {rows['healthy']['budget_ms']:.0f}ms",
             f"{'scenario':<10} {'p50 ms':>9} {'p95 ms':>9} {'max ms':>9} "
             f"{'threads+':>9} {'fallbacks':>10} {'retries':>8}"]
    for label, r in rows.items():
        lines.append(f"{label:<10} {r['p50_ms']:>9.1f} {r['p95_ms']:>9.1f} "
                     f"{r['max_ms']:>9.1f} {r['thread_growth']:>9d} "
                     f"{r['fallbacks']:>10d} {r['retries']:>8d}")
    save_and_print(results_dir, "serving_degradation.txt", "\n".join(lines))

    record_bench(BENCH_SERVING_DEGRADATION, {
        "healthy_p50_ms": rows["healthy"]["p50_ms"],
        "healthy_p95_ms": rows["healthy"]["p95_ms"],
        "healthy_max_ms": rows["healthy"]["max_ms"],
        "wedged_p50_ms": rows["wedged"]["p50_ms"],
        "wedged_p95_ms": rows["wedged"]["p95_ms"],
        "wedged_max_ms": rows["wedged"]["max_ms"],
        "flaky_p50_ms": rows["flaky"]["p50_ms"],
        "flaky_p95_ms": rows["flaky"]["p95_ms"],
        "flaky_max_ms": rows["flaky"]["max_ms"],
        "wedged_thread_growth": rows["wedged"]["thread_growth"],
        "wedged_fallbacks": rows["wedged"]["fallbacks"],
        "flaky_retries": rows["flaky"]["retries"],
        "flaky_fallbacks": rows["flaky"]["fallbacks"],
    }, config={"num_requests": NUM_REQUESTS,
               "budget_ms": rows["healthy"]["budget_ms"]})

    budget_ms = rows["healthy"]["budget_ms"] + SLACK_S * 1000
    # A wedged primary degrades every request to the fallback — within the
    # retry budget, never a hang.
    assert rows["wedged"]["fallbacks"] == NUM_REQUESTS
    assert rows["wedged"]["max_ms"] < budget_ms
    # Hung flush threads are bounded by the circuit breaker, not one per
    # request: thread growth stays far below NUM_REQUESTS.
    assert rows["wedged"]["thread_growth"] < NUM_REQUESTS
    # A flaky primary is recovered by retries, not the fallback, and
    # latency stays within the same budget.
    assert rows["flaky"]["retries"] >= 1
    assert rows["flaky"]["fallbacks"] < NUM_REQUESTS // 2
    assert rows["flaky"]["max_ms"] < budget_ms
    # Degradation is graceful relative to healthy serving.
    assert rows["healthy"]["max_ms"] < budget_ms
