"""Network-serving load benchmark: latency vs. offered load + shedding.

Drives the in-process TCP frontend (``repro.netserve``) with the load
generator (``repro.loadgen``) through two scenarios:

* **sweep** — open-loop traffic at increasing offered rates over an
  encoder with realistic per-call overhead; records the
  latency-vs-offered-load curve (p50/p95/p99, achieved goodput,
  rejection counts).
* **wedged** — the encoder hangs entirely while a closed-loop burst
  arrives at many times the sustainable rate; records how fast the
  admission gate answers (rejections must round-trip in milliseconds)
  and that the frontend never stops answering.

Writes ``benchmarks/results/netserve_load.txt`` (human-readable) and
``benchmarks/results/BENCH_netserve_load.json`` (machine-readable, via
the shared :mod:`repro.bench` emitter; gating tolerances live in
:mod:`repro.bench.registry`).
"""

from __future__ import annotations

import threading
import time

from conftest import save_and_print

from repro.bench import BENCH_NETSERVE_LOAD
from repro.loadgen import LoadgenConfig, render_curve, run_load, sweep
from repro.netserve import (
    AdmissionConfig,
    AdmissionController,
    NetServeConfig,
    TeleServer,
    TenantRegistry,
)
from repro.service import RandomProvider
from repro.serving import FaultAnalysisService, ServiceConfig

CALL_OVERHEAD_S = 0.002          # fixed per-forward-pass cost
PER_NAME_S = 0.00005             # marginal per-name cost
SWEEP_RATES = [50.0, 100.0, 200.0, 400.0]
SWEEP_DURATION_S = 2.0
WEDGED_BURST_S = 2.0


class OverheadProvider(RandomProvider):
    """Encoder stand-in whose cost is dominated by per-call overhead."""

    def __init__(self, dim=32, seed=0):
        super().__init__(dim=dim, seed=seed)

    def encode_names(self, names):
        time.sleep(CALL_OVERHEAD_S + PER_NAME_S * len(names))
        return super().encode_names(names)


class WedgedProvider(RandomProvider):
    """Encoder that blocks until released — the wedge scenario."""

    def __init__(self, dim=32):
        super().__init__(dim=dim, seed=0)
        self._release = threading.Event()

    def release(self):
        self._release.set()

    def encode_names(self, names):
        self._release.wait()
        return super().encode_names(names)


def _server(provider, **admission_overrides):
    service = FaultAnalysisService(
        provider,
        config=ServiceConfig(max_batch_size=32, max_wait_ms=2,
                             timeout_s=1.0, max_retries=0,
                             backoff_s=0.01))
    admission = AdmissionController(
        AdmissionConfig(**admission_overrides), metrics=service.metrics,
        queue_depth_fn=lambda: service.batcher.stats()["pending"])
    server = TeleServer(
        service,
        TenantRegistry.single("bench-key"),
        admission=admission,
        config=NetServeConfig(close_timeout_s=2.0))
    return service, server


def _run_sweep():
    service, server = _server(OverheadProvider(), max_inflight=32,
                              max_queue_depth=512)
    try:
        host, port = server.start()
        reports = sweep(
            LoadgenConfig(host=host, port=port, api_keys=("bench-key",),
                          duration_s=SWEEP_DURATION_S, workers=8,
                          timeout_s=5.0, seed=0),
            rates=SWEEP_RATES)
    finally:
        server.close(timeout_s=2.0)
        service.close()
    return reports


def _run_wedged():
    provider = WedgedProvider()
    service, server = _server(provider, max_inflight=4,
                              max_queue_depth=64)
    try:
        host, port = server.start()
        report = run_load(
            LoadgenConfig(host=host, port=port, api_keys=("bench-key",),
                          mode="closed", concurrency=16,
                          duration_s=WEDGED_BURST_S, timeout_s=5.0,
                          deadline_ms=500.0, seed=0))
    finally:
        provider.release()
        server.close(timeout_s=2.0)
        service.close()
    return report


def test_netserve_load(results_dir, record_bench, benchmark):
    def measure():
        return _run_sweep(), _run_wedged()

    reports, wedged = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["Netserve latency vs offered load "
             f"({SWEEP_DURATION_S:.0f}s per rate, "
             f"{CALL_OVERHEAD_S * 1e3:.0f}ms call overhead)",
             render_curve(reports),
             "",
             f"Wedged-provider burst ({WEDGED_BURST_S:.0f}s closed loop, "
             f"16 workers, max_inflight=4):",
             wedged.render()]
    save_and_print(results_dir, "netserve_load.txt", "\n".join(lines))

    answered = wedged.total - wedged.counts["protocol_error"]
    metrics = {f"sweep_rate_{int(r.offered_rps)}_p95_ms":
               r.ok_latency["p95"] * 1e3 for r in reports}
    metrics.update({f"sweep_rate_{int(r.offered_rps)}_achieved_rps":
                    r.achieved_rps for r in reports})
    metrics.update({
        "wedged_reject_p95_ms": wedged.reject_latency["p95"] * 1e3,
        "wedged_rejected": wedged.counts["rejected"],
        "wedged_answered": answered,
        "wedged_protocol_errors": wedged.counts["protocol_error"],
    })
    record_bench(BENCH_NETSERVE_LOAD, metrics, config={
        "sweep_rates": SWEEP_RATES,
        "sweep_duration_s": SWEEP_DURATION_S,
        "call_overhead_s": CALL_OVERHEAD_S,
        "wedged_burst_s": WEDGED_BURST_S,
        "wedged_concurrency": 16,
        "wedged_max_inflight": 4,
    })

    # The frontend kept answering: every request in the wedged burst got
    # a response, over-admission got structured retry_after rejections,
    # and those rejections round-tripped fast.
    assert wedged.counts["protocol_error"] == 0
    assert wedged.counts["rejected"] > 0
    assert wedged.reject_latency["p95"] < 0.1
    # The sweep produced successful traffic at every offered rate.
    assert all(r.counts["ok"] > 0 for r in reports)
