"""Ablation — FCT scoring functions and confidence weighting.

Two design probes on the fault-chain-tracing substrate:

* GTransE's confidence-scaled margin (Eq. 24) vs plain TransE that ignores
  the per-fact confidence;
* the wider KGE family (TransH / DistMult / ComplEx / RotatE) on the same
  uncertain alarm graph — the completion backends NeuralKG would offer.
"""

import numpy as np
from conftest import save_and_print

from repro.kge import (
    KgeTrainer,
    build_kge_model,
    link_prediction_ranks,
)
from repro.service import RandomProvider
from repro.tasks.fct import FctExperiment, build_fct_dataset


def _train_plain_kge(name: str, dataset, entity_init, seed: int,
                     epochs: int = 30, margin: float = 2.0) -> float:
    """Train a confidence-blind KGE model on the FCT facts; returns MRR."""
    rng = np.random.default_rng(seed)
    if name == "transe":
        from repro.kge import TransE
        model = TransE(dataset.num_entities, dataset.num_relations,
                       dim=entity_init.shape[1], rng=rng,
                       entity_init=entity_init)
    else:
        model = build_kge_model(name, dataset.num_entities,
                                dataset.num_relations,
                                dim=entity_init.shape[1], rng=rng)
    triples = [(q.head, q.relation, q.tail) for q in dataset.quadruples]
    trainer = KgeTrainer(model, triples, dataset.num_entities, rng=rng,
                         learning_rate=0.05, margin=margin)
    trainer.fit(epochs, valid_triples=dataset.valid,
                known=dataset.all_known())
    ranks = link_prediction_ranks(model, dataset.test,
                                  known_triples=dataset.all_known(),
                                  predict="tail")
    return float(np.mean([1.0 / r for r in ranks]) * 100.0)


def test_ablation_confidence_weighting(pipelines, results_dir, benchmark):
    """GTransE (confidence margins) vs plain TransE on the same facts."""
    pipeline = pipelines[0]

    def run():
        dataset = build_fct_dataset(pipeline.world, pipeline.episodes,
                                    seed=pipeline.config.seed)
        provider = RandomProvider(dim=32, seed=0)
        entity_init = provider.encode_names(dataset.entity_names)
        entity_init = entity_init / np.maximum(
            np.linalg.norm(entity_init, axis=1, keepdims=True), 1e-9)
        experiment = FctExperiment(dataset, seed=0, epochs=30)
        gtranse_mrr = experiment.run(provider).as_table_row()["MRR"]
        transe_mrr = _train_plain_kge("transe", dataset, entity_init, seed=0)
        return {"GTransE (confidence margins)": gtranse_mrr,
                "TransE (confidence ignored)": transe_mrr}

    mrrs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — uncertain-KG confidence weighting (FCT MRR %)\n"
            + "\n".join(f"  {k}: {v:.2f}" for k, v in mrrs.items()))
    save_and_print(results_dir, "ablation_confidence.txt", text)
    assert all(np.isfinite(v) and 0 <= v <= 100 for v in mrrs.values())


def test_ablation_kge_family(pipelines, results_dir, benchmark):
    """The cited KGE family on the FCT graph (same budget, random init)."""
    pipeline = pipelines[0]

    def run():
        dataset = build_fct_dataset(pipeline.world, pipeline.episodes,
                                    seed=pipeline.config.seed)
        provider = RandomProvider(dim=32, seed=0)
        entity_init = provider.encode_names(dataset.entity_names)
        entity_init = entity_init / np.maximum(
            np.linalg.norm(entity_init, axis=1, keepdims=True), 1e-9)
        return {name: _train_plain_kge(name, dataset, entity_init, seed=0)
                for name in ("transe", "transh", "distmult", "complex",
                             "rotate")}

    mrrs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation — KGE scoring functions on the FCT graph (MRR %)\n"
            + "\n".join(f"  {k}: {v:.2f}" for k, v in mrrs.items()))
    save_and_print(results_dir, "ablation_kge_family.txt", text)
    assert all(np.isfinite(v) for v in mrrs.values())
