"""Shared fixtures for the experiment-reproduction benchmarks.

The full pipeline (world → corpora → TeleBERT → four KTeleBERT variants) is
built once per seed and shared across all table benchmarks in the session.
Set ``REPRO_BENCH_SEEDS`` (comma-separated, default ``0,1``) to average the
result tables over more seeds — smoother orderings at proportional cost.

Every benchmark writes its rendered table to ``benchmarks/results/`` so the
paper-vs-measured comparison is inspectable after the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentPipeline, PipelineConfig


def bench_seeds() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "0,1,2")
    seeds = [int(part) for part in raw.split(",") if part.strip()]
    if not seeds:
        raise ValueError("REPRO_BENCH_SEEDS resolved to no seeds")
    return seeds


@pytest.fixture(scope="session")
def pipelines() -> list[ExperimentPipeline]:
    """One lazily-built pipeline per benchmark seed."""
    return [ExperimentPipeline(PipelineConfig(seed=seed))
            for seed in bench_seeds()]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print("\n" + text)
