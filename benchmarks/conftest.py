"""Shared fixtures for the experiment-reproduction benchmarks.

The full pipeline (world → corpora → TeleBERT → four KTeleBERT variants) is
built once per seed and shared across all table benchmarks in the session.
Set ``REPRO_BENCH_SEEDS`` (comma-separated, default ``0,1``) to average the
result tables over more seeds — smoother orderings at proportional cost.

Every benchmark writes its rendered table to ``benchmarks/results/`` so the
paper-vs-measured comparison is inspectable after the run.  Suites with
registered metrics additionally emit structured ``BENCH_<name>.json``
through the shared :mod:`repro.bench` emitter (the ``record_bench``
fixture), which also appends the run to ``results/history/<name>.jsonl``
for the trend report and CI regression gate.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import record_metrics
from repro.experiments import ExperimentPipeline, PipelineConfig


def bench_seeds() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "0,1,2")
    seeds = [int(part) for part in raw.split(",") if part.strip()]
    if not seeds:
        raise ValueError("REPRO_BENCH_SEEDS resolved to no seeds")
    return seeds


@pytest.fixture(scope="session")
def pipelines() -> list[ExperimentPipeline]:
    """One lazily-built pipeline per benchmark seed."""
    return [ExperimentPipeline(PipelineConfig(seed=seed))
            for seed in bench_seeds()]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def record_bench(results_dir):
    """Emit metrics into ``BENCH_<name>.json`` via the shared emitter.

    Merge-by-metric semantics: each test contributes its own metrics, so
    the result file stays complete even when only a subset of a module
    runs.  The benchmark id must be registered in
    :mod:`repro.bench.registry`.
    """
    def _record(bench_id: str, metrics: dict, config: dict | None = None):
        return record_metrics(results_dir, bench_id, metrics,
                              config=config)
    return _record


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print("\n" + text)
