"""Ablation — the three service-delivery data modes (Sec. V-A3).

"only name" vs "Entity mapping w/o Attr." vs "Entity mapping w/ Attr.":
how much domain structure each input format exposes, measured as the
theme-separation margin of the resulting event embeddings (the signal the
downstream tasks consume).
"""

import numpy as np
from conftest import save_and_print

from repro.analysis import anisotropy, theme_separation
from repro.service import KTeleBertProvider


def test_ablation_service_modes(pipelines, results_dir, benchmark):
    pipeline = pipelines[0]

    def run():
        model = pipeline.ktelebert_pmtl
        events = pipeline.world.ontology.events
        names = [e.name for e in events]
        themes = [e.theme for e in events]
        rows = {}
        for mode, label in (("name", "only name"),
                            ("entity", "entity mapping w/o Attr."),
                            ("entity_attr", "entity mapping w/ Attr.")):
            provider = KTeleBertProvider(model, pipeline.kg, mode=mode)
            vectors = provider.encode_names(names)
            rows[label] = {
                "theme margin": theme_separation(vectors, themes),
                "anisotropy": anisotropy(vectors),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — service-delivery data modes (KTeleBERT-PMTL)"]
    for label, metrics in rows.items():
        lines.append(f"  {label:<28} theme margin="
                     f"{metrics['theme margin']:+.4f}  "
                     f"anisotropy={metrics['anisotropy']:.4f}")
    save_and_print(results_dir, "ablation_service_modes.txt",
                   "\n".join(lines))

    for metrics in rows.values():
        assert np.isfinite(metrics["theme margin"])
        assert -1.0 <= metrics["anisotropy"] <= 1.0
