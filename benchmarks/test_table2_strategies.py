"""Table II — stage-2 learning strategies (schedule + one step of each).

Regenerates the strategy-summary table and benchmarks one re-training step
under each strategy, confirming STL/PMTL/IMTL drive the objectives the paper
lists (`L_num + L_mask` vs `+ L_ke` vs staged).
"""

from conftest import save_and_print

from repro.experiments import format_table, run_table2
from repro.training.mtl import TASK_KE, TASK_MASK, build_strategy


def test_table2_strategy_schedules(pipelines, results_dir, benchmark):
    result = benchmark.pedantic(lambda: run_table2(pipelines[0]),
                                rounds=1, iterations=1)
    save_and_print(results_dir, "table2_strategies.txt", format_table(result))

    rows = result.rows
    # STL trains masking only; PMTL trains both every step; IMTL stages.
    assert rows["STL"]["KE steps"] == 0
    assert rows["PMTL"]["KE steps"] == rows["PMTL"]["total steps"]
    assert rows["IMTL"]["stages"] == 3
    assert 0 < rows["IMTL"]["KE steps"] < rows["IMTL"]["total steps"]


def test_table2_schedule_composition(benchmark):
    """The resolved IMTL schedule covers the budget with the paper's phases."""

    def build():
        strategy = build_strategy("imtl", 60_000)
        counts = {"mask_only": 0, "ke_only": 0, "both": 0}
        for phase in strategy.phases:
            span = phase.end - phase.start
            if phase.tasks == frozenset({TASK_MASK}):
                counts["mask_only"] += span
            elif phase.tasks == frozenset({TASK_KE}):
                counts["ke_only"] += span
            else:
                counts["both"] += span
        return counts

    counts = benchmark(build)
    assert sum(counts.values()) == 60_000
    assert counts["mask_only"] > 0 and counts["ke_only"] > 0 \
        and counts["both"] > 0
